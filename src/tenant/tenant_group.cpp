#include "tenant/tenant_group.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/policy_factory.hpp"
#include "trace/access.hpp"
#include "util/budget.hpp"
#include "util/check.hpp"

namespace hymem::tenant {

namespace {

/// Cumulative VMM ledger reading; attribution works on deltas between
/// successive readings, so a tenant is charged exactly the counter movement
/// its operation caused.
struct RawCounters {
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t nvm_reads = 0;
  std::uint64_t nvm_writes = 0;
  std::uint64_t page_ins = 0;
  std::uint64_t fills_dram = 0;
  std::uint64_t fills_nvm = 0;
  std::uint64_t mig_to_dram = 0;
  std::uint64_t mig_to_nvm = 0;
  std::uint64_t page_outs = 0;
};

RawCounters read_raw(const os::Vmm& vmm) {
  RawCounters r;
  const auto& dram = vmm.device(Tier::kDram).counters();
  const auto& nvm = vmm.device(Tier::kNvm).counters();
  r.dram_reads = dram.demand_reads;
  r.dram_writes = dram.demand_writes;
  r.nvm_reads = nvm.demand_reads;
  r.nvm_writes = nvm.demand_writes;
  r.page_ins = vmm.disk().page_ins();
  const auto& dma = vmm.dma_counters();
  r.fills_dram = dma.disk_fills_to_dram;
  r.fills_nvm = dma.disk_fills_to_nvm;
  r.mig_to_dram = dma.migrations_nvm_to_dram;
  r.mig_to_nvm = dma.migrations_dram_to_nvm;
  r.page_outs = vmm.disk().page_outs();
  return r;
}

model::EventCounts diff_counts(const model::EventCounts& a,
                               const model::EventCounts& b) {
  model::EventCounts d;
  d.accesses = a.accesses - b.accesses;
  d.dram_read_hits = a.dram_read_hits - b.dram_read_hits;
  d.dram_write_hits = a.dram_write_hits - b.dram_write_hits;
  d.nvm_read_hits = a.nvm_read_hits - b.nvm_read_hits;
  d.nvm_write_hits = a.nvm_write_hits - b.nvm_write_hits;
  d.page_faults = a.page_faults - b.page_faults;
  d.fills_to_dram = a.fills_to_dram - b.fills_to_dram;
  d.fills_to_nvm = a.fills_to_nvm - b.fills_to_nvm;
  d.migrations_to_dram = a.migrations_to_dram - b.migrations_to_dram;
  d.migrations_to_nvm = a.migrations_to_nvm - b.migrations_to_nvm;
  d.dirty_evictions = a.dirty_evictions - b.dirty_evictions;
  d.page_factor = a.page_factor;
  return d;
}

model::ModelParams params_for(const TenantGroupConfig& config) {
  model::ModelParams p;
  p.dram = config.dram;
  p.nvm = config.nvm;
  p.disk_latency_ns = config.disk.access_latency_ns;
  p.page_factor = config.page_size / config.access_granularity;
  p.dram_bytes = config.dram_frames * config.page_size;
  p.nvm_bytes = config.nvm_frames * config.page_size;
  p.transfer_mode = config.transfer_mode;
  return p;
}

}  // namespace

std::string to_string(BudgetMode mode) {
  switch (mode) {
    case BudgetMode::kStaticEqual: return "static";
    case BudgetMode::kDemandProportional: return "demand";
    default: return "shared";
  }
}

BudgetMode parse_budget_mode(const std::string& name) {
  if (name == "static") return BudgetMode::kStaticEqual;
  if (name == "demand") return BudgetMode::kDemandProportional;
  if (name == "shared") return BudgetMode::kSharedQueue;
  throw std::invalid_argument("unknown budget mode: " + name +
                              " (known: static, demand, shared)");
}

PageId namespaced_page(std::uint32_t tenant, PageId local) {
  if (tenant >= kMaxTenants) {
    throw std::invalid_argument("tenant id out of range");
  }
  if (local > kTenantPageMask) {
    throw std::invalid_argument(
        "tenant-local page overflows the per-tenant page space");
  }
  return (static_cast<PageId>(tenant) << kTenantPageBits) | local;
}

std::uint32_t tenant_of_page(PageId namespaced) {
  return static_cast<std::uint32_t>(namespaced >> kTenantPageBits);
}

PageId local_page(PageId namespaced) { return namespaced & kTenantPageMask; }

double TenantGroupResult::tenant_amat_ns(std::size_t index) const {
  const TenantCounters& t = tenants.at(index);
  if (t.counts.accesses == 0) return 0.0;
  return model::amat(t.counts, params).total();
}

// --- Internal state ----------------------------------------------------------

struct TenantGroup::Shard {
  std::uint64_t dram_frames = 0;
  std::uint64_t nvm_frames = 0;
  std::unique_ptr<os::Vmm> vmm;
  std::unique_ptr<policy::HybridPolicy> policy;
  std::vector<std::uint32_t> tenants;  ///< Active tenant ids, sorted.
  RawCounters last;                    ///< Snapshot at last attribution.
};

struct TenantGroup::TenantState {
  std::uint32_t id = 0;
  TenantCounters counters;
  bool active = false;
  unsigned shard = 0;
  std::uint64_t window_accesses = 0;  ///< Demand signal, reset per rebalance.
  model::EventCounts epoch_start;     ///< Counts at the open epoch's start.
  util::FlatPageMap<char> touched;    ///< Local pages possibly resident.
  std::vector<PageId> touched_list;   ///< Same, first-touch order.
};

TenantGroup::TenantGroup(const TenantGroupConfig& config) : config_(config) {
  if (!sim::is_shardable(config_.policy)) {
    sim::throw_unshardable_policy("tenant groups", config_.policy);
  }
  if (config_.budget_mode == BudgetMode::kSharedQueue) config_.shards = 1;
  if (config_.shards == 0) {
    throw std::invalid_argument("tenant groups need shards >= 1");
  }
  if (config_.dram_frames + config_.nvm_frames == 0) {
    throw std::invalid_argument("tenant groups need a nonzero frame budget");
  }
  if (config_.page_size == 0 || config_.access_granularity == 0 ||
      config_.page_size % config_.access_granularity != 0) {
    throw std::invalid_argument(
        "page size must be a positive multiple of the access granularity");
  }
  shards_.resize(config_.shards);
  totals_.page_factor = config_.page_size / config_.access_granularity;
}

TenantGroup::~TenantGroup() = default;

unsigned TenantGroup::shard_count() const {
  return static_cast<unsigned>(shards_.size());
}

unsigned TenantGroup::shard_of(std::uint32_t tenant) const {
  if (shards_.size() == 1) return 0;
  return static_cast<unsigned>(util::hash_page_id(tenant) % shards_.size());
}

const os::Vmm* TenantGroup::shard_vmm(unsigned shard) const {
  return shards_.at(shard).vmm.get();
}

std::uint64_t TenantGroup::shard_frames(unsigned shard, Tier tier) const {
  const Shard& s = shards_.at(shard);
  return tier == Tier::kDram ? s.dram_frames : s.nvm_frames;
}

TenantGroup::TenantState& TenantGroup::state_of(std::uint32_t tenant) {
  const auto it = std::lower_bound(known_.begin(), known_.end(), tenant);
  const auto idx = static_cast<std::size_t>(it - known_.begin());
  if (it != known_.end() && *it == tenant) return *states_[idx];
  auto state = std::make_unique<TenantState>();
  state->id = tenant;
  state->counters.tenant = tenant;
  state->counters.counts.page_factor = totals_.page_factor;
  known_.insert(it, tenant);
  states_.insert(states_.begin() + static_cast<std::ptrdiff_t>(idx),
                 std::move(state));
  return *states_[idx];
}

TenantGroup::TenantState* TenantGroup::find_state(std::uint32_t tenant) {
  const auto it = std::lower_bound(known_.begin(), known_.end(), tenant);
  if (it == known_.end() || *it != tenant) return nullptr;
  return states_[static_cast<std::size_t>(it - known_.begin())].get();
}

const TenantGroup::TenantState* TenantGroup::find_state(
    std::uint32_t tenant) const {
  const auto it = std::lower_bound(known_.begin(), known_.end(), tenant);
  if (it == known_.end() || *it != tenant) return nullptr;
  return states_[static_cast<std::size_t>(it - known_.begin())].get();
}

void TenantGroup::attribute(Shard& shard, TenantState& state) {
  if (shard.vmm == nullptr) return;
  const RawCounters cur = read_raw(*shard.vmm);
  const RawCounters& last = shard.last;
  const auto apply = [&](model::EventCounts& c) {
    c.dram_read_hits += cur.dram_reads - last.dram_reads;
    c.dram_write_hits += cur.dram_writes - last.dram_writes;
    c.nvm_read_hits += cur.nvm_reads - last.nvm_reads;
    c.nvm_write_hits += cur.nvm_writes - last.nvm_writes;
    c.page_faults += cur.page_ins - last.page_ins;
    c.fills_to_dram += cur.fills_dram - last.fills_dram;
    c.fills_to_nvm += cur.fills_nvm - last.fills_nvm;
    c.migrations_to_dram += cur.mig_to_dram - last.mig_to_dram;
    c.migrations_to_nvm += cur.mig_to_nvm - last.mig_to_nvm;
    c.dirty_evictions += cur.page_outs - last.page_outs;
  };
  apply(state.counters.counts);
  apply(totals_);
  shard.last = cur;
}

std::uint64_t TenantGroup::evict_tenant(std::uint32_t tenant) {
  TenantState* state = find_state(tenant);
  HYMEM_CHECK(state != nullptr);
  Shard& shard = shards_[state->shard];
  std::uint64_t evicted = 0;
  if (shard.vmm != nullptr) {
    for (const PageId local : state->touched_list) {
      const PageId page = namespaced_page(tenant, local);
      if (!shard.vmm->is_resident(page)) continue;
      shard.vmm->evict(page);
      ++evicted;
    }
    attribute(shard, *state);
  }
  state->touched = util::FlatPageMap<char>{};
  state->touched_list.clear();
  return evicted;
}

void TenantGroup::flush_shard(unsigned index) {
  Shard& shard = shards_[index];
  if (shard.vmm == nullptr) return;
  for (std::size_t i = 0; i < known_.size(); ++i) {
    TenantState& state = *states_[i];
    if (state.shard != index || state.touched_list.empty()) continue;
    const std::uint64_t evicted = evict_tenant(known_[i]);
    state.counters.reconfig_evictions += evicted;
    reconfig_evictions_ += evicted;
  }
  shard.policy.reset();
  shard.vmm.reset();
  shard.last = RawCounters{};
}

void TenantGroup::build_shard(unsigned index) {
  Shard& shard = shards_[index];
  if (shard.dram_frames + shard.nvm_frames == 0) return;
  os::VmmConfig vc;
  vc.dram_frames = shard.dram_frames;
  vc.nvm_frames = shard.nvm_frames;
  vc.page_size = config_.page_size;
  vc.access_granularity = config_.access_granularity;
  vc.dram = config_.dram;
  vc.nvm = config_.nvm;
  vc.disk = config_.disk;
  vc.transfer_mode = config_.transfer_mode;
  vc.wear_leveling = config_.wear_leveling;
  shard.vmm = std::make_unique<os::Vmm>(vc);
  shard.policy = sim::make_policy(config_.policy, *shard.vmm, config_.migration);
  shard.last = RawCounters{};
}

bool TenantGroup::reconfigure() {
  const std::size_t n = shards_.size();
  std::vector<std::uint64_t> weights(n, 0);
  bool any_active = false;
  for (const auto& state : states_) {
    if (!state->active) continue;
    any_active = true;
    // Static mode: one unit per tenant (equal split). Demand mode: one unit
    // plus the tenant's accesses this window, so idle tenants keep a floor.
    const std::uint64_t w =
        config_.budget_mode == BudgetMode::kDemandProportional
            ? 1 + state->window_accesses
            : 1;
    weights[state->shard] += w;
  }
  std::vector<std::uint64_t> dram(n, 0);
  std::vector<std::uint64_t> nvm(n, 0);
  if (any_active) {
    dram = util::split_budget(config_.dram_frames, weights);
    nvm = util::split_budget(config_.nvm_frames, weights);
  }
  bool flushed = false;
  for (std::size_t i = 0; i < n; ++i) {
    Shard& shard = shards_[i];
    if (shard.dram_frames == dram[i] && shard.nvm_frames == nvm[i]) continue;
    if (shard.vmm != nullptr) {
      flush_shard(static_cast<unsigned>(i));
      flushed = true;
    }
    shard.dram_frames = dram[i];
    shard.nvm_frames = nvm[i];
    build_shard(static_cast<unsigned>(i));
  }
  for (const auto& state : states_) state->window_accesses = 0;
  window_accesses_ = 0;
  return flushed;
}

void TenantGroup::arrive(std::uint32_t tenant) {
  if (finished_) throw std::logic_error("tenant group already finished");
  if (tenant >= kMaxTenants) {
    throw std::invalid_argument("tenant id out of range");
  }
  TenantState& state = state_of(tenant);
  if (state.active) return;
  state.active = true;
  ++state.counters.arrivals;
  ++epoch_arrivals_;
  state.shard = shard_of(tenant);
  Shard& shard = shards_[state.shard];
  shard.tenants.insert(
      std::lower_bound(shard.tenants.begin(), shard.tenants.end(), tenant),
      tenant);
  if (reconfigure()) ++reconfigurations_;
  if (audit_hook_) audit_hook_(*this);
}

void TenantGroup::depart(std::uint32_t tenant) {
  if (finished_) throw std::logic_error("tenant group already finished");
  TenantState* state = find_state(tenant);
  if (state == nullptr || !state->active) return;
  state->active = false;
  ++state->counters.departures;
  ++epoch_departures_;
  const unsigned index = state->shard;
  Shard& shard = shards_[index];
  const auto it =
      std::lower_bound(shard.tenants.begin(), shard.tenants.end(), tenant);
  HYMEM_CHECK(it != shard.tenants.end() && *it == tenant);
  shard.tenants.erase(it);
  bool flushed = reconfigure();
  // The reconfigure above flushes shards whose slice changed; in the
  // single-shard modes the slice is the whole budget and never changes, so
  // the departed address space's teardown is explicit: flush its shard
  // (departure collateral is the shared-queue mode's isolation story) and
  // rebuild it cold at the same size.
  if (!state->touched_list.empty() && shards_[index].vmm != nullptr) {
    flush_shard(index);
    build_shard(index);
    flushed = true;
  }
  if (flushed) ++reconfigurations_;
  if (audit_hook_) audit_hook_(*this);
}

Nanoseconds TenantGroup::serve(std::uint32_t tenant,
                               const trace::MemAccess& access) {
  if (finished_) throw std::logic_error("tenant group already finished");
  TenantState* state = find_state(tenant);
  if (state == nullptr || !state->active) {
    arrive(tenant);
    state = find_state(tenant);
  }
  Shard& shard = shards_[state->shard];
  HYMEM_CHECK(shard.policy != nullptr);
  const PageId local = trace::page_of(access.addr, config_.page_size);
  const PageId page = namespaced_page(tenant, local);
  const Nanoseconds latency = shard.policy->on_access(page, access.type);
  if (state->touched.try_emplace(local).second) {
    state->touched_list.push_back(local);
  }
  ++accesses_;
  ++totals_.accesses;
  ++state->counters.counts.accesses;
  ++state->window_accesses;
  ++window_accesses_;
  state->counters.visible_latency_ns += latency;
  visible_latency_ns_ += latency;
  attribute(shard, *state);
  if (config_.budget_mode == BudgetMode::kDemandProportional &&
      config_.rebalance_period > 0 &&
      window_accesses_ >= config_.rebalance_period) {
    if (reconfigure()) ++reconfigurations_;
  }
  tick_epoch();
  if (audit_hook_) audit_hook_(*this);
  return latency;
}

void TenantGroup::tick_epoch() {
  if (config_.epoch_accesses == 0) return;
  if (accesses_ - epoch_start_access_ < config_.epoch_accesses) return;
  emit_epoch();
}

void TenantGroup::emit_epoch() {
  TenantEpochRecord rec;
  rec.epoch = timeline_.size();
  rec.end_access = accesses_;
  rec.arrivals = epoch_arrivals_;
  rec.departures = epoch_departures_;
  rec.reconfigurations = reconfigurations_;
  rec.delta = diff_counts(totals_, epoch_start_totals_);
  const model::ModelParams params = params_for(config_);
  if (rec.delta.accesses > 0) {
    rec.amat_total_ns = model::amat(rec.delta, params).total();
  }
  std::vector<double> amats;
  std::uint32_t active = 0;
  for (const auto& state : states_) {
    if (state->active) ++active;
    const model::EventCounts delta =
        diff_counts(state->counters.counts, state->epoch_start);
    if (delta.accesses > 0) {
      amats.push_back(model::amat(delta, params).total());
    }
    state->epoch_start = state->counters.counts;
  }
  rec.active_tenants = active;
  rec.fairness = summarize_fairness(amats);
  for (const Shard& shard : shards_) {
    if (shard.vmm == nullptr) continue;
    rec.dram_resident += shard.vmm->resident(Tier::kDram);
    rec.nvm_resident += shard.vmm->resident(Tier::kNvm);
  }
  timeline_.push_back(rec);
  epoch_start_access_ = accesses_;
  epoch_start_totals_ = totals_;
  epoch_arrivals_ = 0;
  epoch_departures_ = 0;
}

TenantGroupResult TenantGroup::run(const synth::TenantStream& stream) {
  if (finished_) throw std::logic_error("tenant group already finished");
  if (stream.page_size != config_.page_size) {
    throw std::invalid_argument(
        "tenant stream page size does not match the group's");
  }
  for (const synth::TenantOp& op : stream.ops) {
    switch (op.kind) {
      case synth::TenantOp::Kind::kArrive: arrive(op.tenant); break;
      case synth::TenantOp::Kind::kDepart: depart(op.tenant); break;
      default: serve(op.tenant, op.access); break;
    }
  }
  return finish(stream.name);
}

TenantGroupResult TenantGroup::finish(std::string workload_name) {
  if (finished_) throw std::logic_error("tenant group already finished");
  finished_ = true;
  if (config_.epoch_accesses > 0 && accesses_ > epoch_start_access_) {
    emit_epoch();
  }
  TenantGroupResult result;
  result.policy = config_.policy;
  result.workload = std::move(workload_name);
  result.accesses = accesses_;
  result.duration_s = config_.duration_s;
  result.totals = totals_;
  result.params = params_for(config_);
  result.visible_latency_ns = visible_latency_ns_;
  result.reconfigurations = reconfigurations_;
  result.reconfig_evictions = reconfig_evictions_;
  result.timeline = std::move(timeline_);
  std::vector<double> amats;
  result.tenants.reserve(states_.size());
  for (const auto& state : states_) {
    result.tenants.push_back(state->counters);
    if (state->counters.counts.accesses > 0) {
      amats.push_back(model::amat(state->counters.counts, result.params).total());
    }
  }
  result.fairness = summarize_fairness(amats);
  return result;
}

bool TenantGroup::is_active(std::uint32_t tenant) const {
  const TenantState* state = find_state(tenant);
  return state != nullptr && state->active;
}

std::vector<std::uint32_t> TenantGroup::active_tenants() const {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < known_.size(); ++i) {
    if (states_[i]->active) out.push_back(known_[i]);
  }
  return out;
}

std::vector<std::uint32_t> TenantGroup::known_tenants() const { return known_; }

std::uint64_t TenantGroup::resident_pages(std::uint32_t tenant,
                                          Tier tier) const {
  const TenantState* state = find_state(tenant);
  if (state == nullptr) return 0;
  const Shard& shard = shards_[state->shard];
  if (shard.vmm == nullptr) return 0;
  std::uint64_t count = 0;
  for (const PageId local : state->touched_list) {
    const auto where = shard.vmm->tier_of(namespaced_page(tenant, local));
    if (where.has_value() && *where == tier) ++count;
  }
  return count;
}

double TenantGroup::hot_set_dram_retention(
    std::uint32_t tenant, std::span<const PageId> local_hot) const {
  if (local_hot.empty()) return 0.0;
  const TenantState* state = find_state(tenant);
  if (state == nullptr || !state->active) return 0.0;
  const Shard& shard = shards_[state->shard];
  if (shard.vmm == nullptr) return 0.0;
  std::uint64_t in_dram = 0;
  for (const PageId local : local_hot) {
    const auto where = shard.vmm->tier_of(namespaced_page(tenant, local));
    if (where.has_value() && *where == Tier::kDram) ++in_dram;
  }
  return static_cast<double>(in_dram) / static_cast<double>(local_hot.size());
}

const TenantCounters& TenantGroup::counters(std::uint32_t tenant) const {
  const TenantState* state = find_state(tenant);
  if (state == nullptr) {
    throw std::invalid_argument("unknown tenant: never arrived");
  }
  return state->counters;
}

void TenantGroup::set_audit_hook(
    std::function<void(const TenantGroup&)> hook) {
  audit_hook_ = std::move(hook);
}

}  // namespace hymem::tenant
