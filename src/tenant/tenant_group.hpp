// Multi-tenant serving layer: N independent address spaces sharing one
// physical DRAM/NVM budget.
//
// Modeled on HybridMemoryGroup (hmem-sigsegv): a group owns K policy
// instances ("shards"), each an independent VMM + hybrid policy over a
// slice of the shared budget; tenants are hash-assigned to shards and their
// page IDs are namespaced (tenant bits above the page bits) so address
// spaces can never collide. Arbitration of the shared budget is pluggable:
//
//   * kStaticEqual        — every active tenant owns an equal share; a
//     shard's slice is the sum of its tenants' shares. Recomputed only when
//     the active set changes (admission control repartitions).
//   * kDemandProportional — shares follow each tenant's access counts over
//     the last rebalance window (plus one, so idle tenants keep a floor),
//     recomputed every `rebalance_period` accesses and at churn events.
//   * kSharedQueue        — free-for-all contrast mode: one policy instance
//     owns the whole budget and every tenant competes inside its queues
//     (no isolation at all; the scan antagonist's best case).
//
// Repartitioning is modeled as a partition flush: a shard whose slice
// changed evicts its residents (dirty page-outs charged to the owning
// tenants) and restarts cold, so rebalancing pays an explicit, accounted
// cost rather than a free resize. This is an upper bound on what a real
// repartition pays and is what makes the static/demand comparison honest.
//
// Everything is deterministic: one serving order in, one result out — no
// threads, no wall clock — so byte-identical invariants (budget
// conservation, 1-tenant parity with the plain engine, double-replay
// equality) can gate it in CI.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/migration_config.hpp"
#include "mem/technology.hpp"
#include "model/events.hpp"
#include "model/model_params.hpp"
#include "model/perf_model.hpp"
#include "os/vmm.hpp"
#include "policy/hybrid_policy.hpp"
#include "synth/tenant_stream.hpp"
#include "tenant/fairness.hpp"
#include "util/flat_page_map.hpp"

namespace hymem::tenant {

/// How the shared physical budget is arbitrated across tenants.
enum class BudgetMode : std::uint8_t {
  kStaticEqual = 0,
  kDemandProportional = 1,
  kSharedQueue = 2,
};

std::string to_string(BudgetMode mode);
/// Parses "static" / "demand" / "shared"; throws std::invalid_argument.
BudgetMode parse_budget_mode(const std::string& name);

// --- Page-ID namespacing -----------------------------------------------------
// Tenant IDs occupy the bits above the per-tenant page space, so namespaced
// IDs are unique across address spaces by construction and tenant 0 maps to
// the identity (the 1-tenant parity canary depends on that).

inline constexpr unsigned kTenantPageBits = 40;
inline constexpr PageId kTenantPageMask = (PageId{1} << kTenantPageBits) - 1;
inline constexpr std::uint32_t kMaxTenants =
    (std::uint32_t{1} << 20);  ///< 64 - 40 = 24 bits, capped well below.

/// Namespaces a tenant-local page ID; throws std::invalid_argument when the
/// local page overflows the per-tenant page space.
PageId namespaced_page(std::uint32_t tenant, PageId local);
std::uint32_t tenant_of_page(PageId namespaced);
PageId local_page(PageId namespaced);

// --- Configuration -----------------------------------------------------------

struct TenantGroupConfig {
  std::string policy = "two-lru";
  BudgetMode budget_mode = BudgetMode::kStaticEqual;
  /// Policy instances the tenants are hash-assigned across. kSharedQueue
  /// always runs one instance regardless of this value.
  unsigned shards = 1;
  std::uint64_t dram_frames = 0;  ///< Shared physical budget.
  std::uint64_t nvm_frames = 0;
  std::uint64_t page_size = kDefaultPageSize;
  std::uint64_t access_granularity = 64;
  mem::MemTechnology dram = mem::dram_table4();
  mem::MemTechnology nvm = mem::pcm_table4();
  mem::DiskModel disk{};
  mem::TransferMode transfer_mode = mem::TransferMode::kDma;
  bool wear_leveling = false;
  core::MigrationConfig migration{};
  /// kDemandProportional: accesses between demand rebalances (0 disables
  /// the periodic trigger; churn events still rebalance).
  std::uint64_t rebalance_period = 0;
  /// Tenant timeline epoch length in accesses (0 = no timeline).
  std::uint64_t epoch_accesses = 0;
  /// ROI wall time for Eq. 3 static proration of the aggregate result.
  double duration_s = 1.0;
};

// --- Results -----------------------------------------------------------------

/// Everything attributed to one tenant over the run. Attribution is by
/// triggering access: the migrations, faults and evictions an access (or a
/// departure/repartition flush) causes are charged to that tenant.
struct TenantCounters {
  std::uint32_t tenant = 0;
  model::EventCounts counts;
  Nanoseconds visible_latency_ns = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  /// Residents evicted out from under this tenant by repartition flushes.
  std::uint64_t reconfig_evictions = 0;
};

/// One epoch of the tenant timeline.
struct TenantEpochRecord {
  std::uint64_t epoch = 0;
  std::uint64_t end_access = 0;
  std::uint32_t active_tenants = 0;
  std::uint64_t arrivals = 0;    ///< Delta within the epoch.
  std::uint64_t departures = 0;  ///< Delta within the epoch.
  model::EventCounts delta;      ///< Aggregate events within the epoch.
  double amat_total_ns = 0.0;    ///< Eq. 1 over the epoch's delta counts.
  FairnessSummary fairness;      ///< Over per-tenant epoch AMATs.
  std::uint64_t dram_resident = 0;  ///< Summed over shards at the boundary.
  std::uint64_t nvm_resident = 0;
  std::uint64_t reconfigurations = 0;  ///< Cumulative at the boundary.
};

struct TenantGroupResult {
  std::string policy;
  std::string workload;
  std::uint64_t accesses = 0;
  double duration_s = 0.0;
  model::EventCounts totals;
  model::ModelParams params;  ///< Budget-level bytes, config technologies.
  Nanoseconds visible_latency_ns = 0;
  /// Per-tenant attribution, ordered by tenant id (tenants that ever
  /// arrived; sums to `totals` exactly).
  std::vector<TenantCounters> tenants;
  std::uint64_t reconfigurations = 0;
  std::uint64_t reconfig_evictions = 0;
  FairnessSummary fairness;  ///< Over full-run per-tenant AMATs.
  std::vector<TenantEpochRecord> timeline;

  model::AmatBreakdown amat() const { return model::amat(totals, params); }
  /// Full-run AMAT of one entry of `tenants` (0 when it served nothing).
  double tenant_amat_ns(std::size_t index) const;
};

// --- The group ---------------------------------------------------------------

class TenantGroup {
 public:
  /// Validates the configuration (policy must be shardable, budgets must
  /// admit the shard count) and starts with zero tenants admitted.
  explicit TenantGroup(const TenantGroupConfig& config);
  ~TenantGroup();
  TenantGroup(const TenantGroup&) = delete;
  TenantGroup& operator=(const TenantGroup&) = delete;

  const TenantGroupConfig& config() const { return config_; }

  /// Replays a whole stream (arrivals, accesses, departures in order) and
  /// finalizes. One-shot: a group that already ran throws std::logic_error.
  TenantGroupResult run(const synth::TenantStream& stream);

  // Incremental serving (what run() drives; exposed for the invariant
  // fuzzer and custom harnesses).
  void arrive(std::uint32_t tenant);
  void depart(std::uint32_t tenant);
  /// Serves one access for `tenant` (auto-admits inactive tenants) and
  /// returns the visible latency.
  Nanoseconds serve(std::uint32_t tenant, const trace::MemAccess& access);
  /// Finalizes: flushes the open epoch and builds the result.
  TenantGroupResult finish(std::string workload_name = "tenants");

  // --- Introspection (invariant checks, metrics, tests) ---------------------
  unsigned shard_count() const;
  unsigned shard_of(std::uint32_t tenant) const;
  /// Null when the shard currently has no tenants (and owns no frames).
  const os::Vmm* shard_vmm(unsigned shard) const;
  std::uint64_t shard_frames(unsigned shard, Tier tier) const;
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t reconfigurations() const { return reconfigurations_; }
  bool is_active(std::uint32_t tenant) const;
  std::vector<std::uint32_t> active_tenants() const;
  /// Tenants that ever arrived, in id order.
  std::vector<std::uint32_t> known_tenants() const;
  /// Local pages of `tenant` currently resident in `tier` (probes the
  /// tenant's touched set against its shard's page table).
  std::uint64_t resident_pages(std::uint32_t tenant, Tier tier) const;
  /// Fraction of `local_hot` currently DRAM-resident for `tenant` (0 when
  /// inactive or the set is empty) — the isolation metric's raw input.
  double hot_set_dram_retention(std::uint32_t tenant,
                                std::span<const PageId> local_hot) const;
  const TenantCounters& counters(std::uint32_t tenant) const;

  /// Installed hook runs after every completed operation (serve, arrive,
  /// depart) — the invariant fuzzer's audit seam.
  void set_audit_hook(std::function<void(const TenantGroup&)> hook);

 private:
  struct Shard;
  struct TenantState;

  TenantState& state_of(std::uint32_t tenant);
  TenantState* find_state(std::uint32_t tenant);
  const TenantState* find_state(std::uint32_t tenant) const;
  /// Recomputes per-shard budget slices from the active set (and, in
  /// demand mode, the current window counts); flushes and rebuilds every
  /// shard whose slice changed. Resets the demand window. Returns true
  /// when at least one live shard was flushed.
  bool reconfigure();
  /// Evicts every resident page of `tenant` (charged to it) and clears its
  /// touched set. Returns the number of pages evicted.
  std::uint64_t evict_tenant(std::uint32_t tenant);
  /// Partition flush: evicts every tenant's residents on the shard (charged
  /// to the owners as reconfig evictions, tenants in id order) and destroys
  /// the shard's policy and VMM. The caller rebuilds via build_shard.
  void flush_shard(unsigned index);
  /// (Re)builds the shard's VMM and policy cold at its recorded slice
  /// (no-op when the slice is zero frames).
  void build_shard(unsigned index);
  /// Folds the shard's counter movement since the last snapshot into the
  /// tenant's ledger and the group totals.
  void attribute(Shard& shard, TenantState& state);
  void tick_epoch();
  void emit_epoch();

  TenantGroupConfig config_;
  std::vector<Shard> shards_;
  std::vector<std::uint32_t> known_;  ///< Ever-arrived tenant ids, sorted.
  std::vector<std::unique_ptr<TenantState>> states_;  ///< Parallel to known_.
  std::uint64_t accesses_ = 0;
  Nanoseconds visible_latency_ns_ = 0;
  model::EventCounts totals_;
  std::uint64_t reconfigurations_ = 0;
  std::uint64_t reconfig_evictions_ = 0;
  std::uint64_t window_accesses_ = 0;  ///< Since the last demand rebalance.
  // Epoch bookkeeping.
  std::vector<TenantEpochRecord> timeline_;
  std::uint64_t epoch_start_access_ = 0;
  std::uint64_t epoch_arrivals_ = 0;
  std::uint64_t epoch_departures_ = 0;
  model::EventCounts epoch_start_totals_;
  bool finished_ = false;
  std::function<void(const TenantGroup&)> audit_hook_;
};

}  // namespace hymem::tenant
