// Greedy trace minimization for failing differential/fuzz cases.
//
// A raw failing fuzz trace is thousands of accesses; the bug usually needs
// a handful. shrink_trace() runs delta debugging (chunked removal with
// halving chunk sizes down to single accesses, iterated to a fixpoint) and
// then renumbers the surviving pages densely from 0, so the reported repro
// is the smallest trace this greedy process can reach that still fails the
// predicate.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "synth/tenant_stream.hpp"
#include "trace/trace.hpp"

namespace hymem::check {

/// Returns true when `candidate` still reproduces the failure. Must be
/// deterministic (replay-based predicates over fixed configs are).
using FailurePredicate = std::function<bool(const trace::Trace&)>;

/// Minimizes `failing` (which must satisfy `still_fails`) by greedy chunk
/// removal and page renumbering. `max_predicate_calls` bounds the work on
/// stubborn traces; the best trace found so far is returned when the budget
/// runs out.
trace::Trace shrink_trace(const trace::Trace& failing,
                          const FailurePredicate& still_fails,
                          std::size_t max_predicate_calls = 20000);

/// Returns true when the candidate op schedule still reproduces the
/// failure. Must be deterministic.
using TenantOpsPredicate =
    std::function<bool(const std::vector<synth::TenantOp>&)>;

/// Tenant-schedule variant of shrink_trace: minimizes a failing op stream
/// (arrivals, departures, accesses in serving order) by the same greedy
/// chunk removal. No renumbering — tenant ids and local pages carry
/// meaning (shard assignment, hot sets), so the surviving ops are reported
/// verbatim (see format_tenant_ops).
std::vector<synth::TenantOp> shrink_tenant_ops(
    const std::vector<synth::TenantOp>& failing,
    const TenantOpsPredicate& still_fails,
    std::size_t max_predicate_calls = 20000);

}  // namespace hymem::check
