#include "check/tenant_invariants.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "check/fuzzer.hpp"
#include "synth/generator.hpp"
#include "util/check.hpp"

namespace hymem::check {

void check_invariants(const tenant::TenantGroup& group) {
  const tenant::TenantGroupConfig& config = group.config();
  const bool any_active = !group.active_tenants().empty();

  // Budget conservation: slices sum to the shared budget exactly while any
  // tenant is active, to zero otherwise; every live shard's residency fits
  // its slice; shards without a VMM own no frames.
  std::uint64_t dram_slices = 0;
  std::uint64_t nvm_slices = 0;
  std::uint64_t dram_resident = 0;
  std::uint64_t nvm_resident = 0;
  for (unsigned s = 0; s < group.shard_count(); ++s) {
    const std::uint64_t dram = group.shard_frames(s, Tier::kDram);
    const std::uint64_t nvm = group.shard_frames(s, Tier::kNvm);
    dram_slices += dram;
    nvm_slices += nvm;
    const os::Vmm* vmm = group.shard_vmm(s);
    if (vmm == nullptr) {
      HYMEM_CHECK_MSG(dram + nvm == 0,
                      "a shard without a VMM must own no frames");
      continue;
    }
    HYMEM_CHECK_MSG(vmm->resident(Tier::kDram) <= dram,
                    "shard DRAM residency exceeds its slice");
    HYMEM_CHECK_MSG(vmm->resident(Tier::kNvm) <= nvm,
                    "shard NVM residency exceeds its slice");
    vmm->check_consistency();
    dram_resident += vmm->resident(Tier::kDram);
    nvm_resident += vmm->resident(Tier::kNvm);
  }
  HYMEM_CHECK_MSG(dram_slices == (any_active ? config.dram_frames : 0),
                  "shard DRAM slices must sum to the shared budget");
  HYMEM_CHECK_MSG(nvm_slices == (any_active ? config.nvm_frames : 0),
                  "shard NVM slices must sum to the shared budget");

  // Namespace coverage: the per-tenant residency (probed through each
  // tenant's own namespace) reproduces the shards' residency exactly —
  // no double-residency across namespaces, no orphaned residents — and
  // departed tenants hold nothing.
  std::uint64_t tenant_dram = 0;
  std::uint64_t tenant_nvm = 0;
  for (const std::uint32_t t : group.known_tenants()) {
    const std::uint64_t dram = group.resident_pages(t, Tier::kDram);
    const std::uint64_t nvm = group.resident_pages(t, Tier::kNvm);
    if (!group.is_active(t)) {
      HYMEM_CHECK_MSG(dram + nvm == 0,
                      "departed tenant still holds resident pages");
    }
    tenant_dram += dram;
    tenant_nvm += nvm;
  }
  HYMEM_CHECK_MSG(tenant_dram == dram_resident,
                  "per-tenant DRAM residency must cover the shards exactly");
  HYMEM_CHECK_MSG(tenant_nvm == nvm_resident,
                  "per-tenant NVM residency must cover the shards exactly");
}

void install_invariant_hook(tenant::TenantGroup& group) {
  group.set_audit_hook(
      [](const tenant::TenantGroup& g) { check_invariants(g); });
}

namespace {

void expect_equal(std::uint64_t a, std::uint64_t b, const char* what) {
  if (a != b) {
    std::ostringstream os;
    os << "tenant fuzz replay diverged on " << what << ": " << a << " vs "
       << b << " (the tenant group must be deterministic)";
    throw std::logic_error(os.str());
  }
}

void expect_counts_equal(const model::EventCounts& a,
                         const model::EventCounts& b, const char* what) {
  const auto check = [&](std::uint64_t x, std::uint64_t y,
                         const char* field) {
    if (x != y) {
      std::ostringstream os;
      os << "tenant fuzz replay diverged on " << what << "." << field << ": "
         << x << " vs " << y;
      throw std::logic_error(os.str());
    }
  };
  check(a.accesses, b.accesses, "accesses");
  check(a.dram_read_hits, b.dram_read_hits, "dram_read_hits");
  check(a.dram_write_hits, b.dram_write_hits, "dram_write_hits");
  check(a.nvm_read_hits, b.nvm_read_hits, "nvm_read_hits");
  check(a.nvm_write_hits, b.nvm_write_hits, "nvm_write_hits");
  check(a.page_faults, b.page_faults, "page_faults");
  check(a.fills_to_dram, b.fills_to_dram, "fills_to_dram");
  check(a.fills_to_nvm, b.fills_to_nvm, "fills_to_nvm");
  check(a.migrations_to_dram, b.migrations_to_dram, "migrations_to_dram");
  check(a.migrations_to_nvm, b.migrations_to_nvm, "migrations_to_nvm");
  check(a.dirty_evictions, b.dirty_evictions, "dirty_evictions");
}

tenant::TenantGroupResult replay(const TenantFuzzCase& fc,
                                 const synth::TenantStream& stream,
                                 bool audit_every_op) {
  tenant::TenantGroup group(fc.group);
  if (audit_every_op) install_invariant_hook(group);
  tenant::TenantGroupResult result = group.run(stream);
  check_invariants(group);
  return result;
}

}  // namespace

TenantFuzzOutcome run_tenant_fuzz_case(std::uint64_t seed,
                                       std::size_t accesses) {
  const TenantFuzzCase fc = make_tenant_fuzz_case(seed, accesses);
  synth::GeneratorOptions options;
  options.page_size = fc.group.page_size;
  const synth::TenantStream stream =
      synth::generate_tenant_stream(fc.spec, options);

  const tenant::TenantGroupResult first =
      replay(fc, stream, /*audit_every_op=*/true);

  // Determinism oracle: a fresh second replay (without the audit hook — the
  // hook itself must not affect behavior either) must land on identical
  // ledgers.
  const tenant::TenantGroupResult second =
      replay(fc, stream, /*audit_every_op=*/false);
  expect_equal(first.accesses, second.accesses, "access count");
  expect_equal(first.reconfigurations, second.reconfigurations,
               "reconfigurations");
  expect_equal(first.reconfig_evictions, second.reconfig_evictions,
               "reconfig evictions");
  expect_counts_equal(first.totals, second.totals, "totals");
  expect_equal(first.tenants.size(), second.tenants.size(), "tenant count");
  for (std::size_t i = 0; i < first.tenants.size(); ++i) {
    expect_equal(first.tenants[i].tenant, second.tenants[i].tenant,
                 "tenant id");
    expect_counts_equal(first.tenants[i].counts, second.tenants[i].counts,
                        "tenant counts");
    expect_equal(first.tenants[i].reconfig_evictions,
                 second.tenants[i].reconfig_evictions,
                 "tenant reconfig evictions");
  }

  // Attribution conservation: the per-tenant ledgers sum to the group
  // totals field by field (every event is charged to exactly one tenant).
  model::EventCounts sum;
  for (const tenant::TenantCounters& t : first.tenants) {
    sum.accesses += t.counts.accesses;
    sum.dram_read_hits += t.counts.dram_read_hits;
    sum.dram_write_hits += t.counts.dram_write_hits;
    sum.nvm_read_hits += t.counts.nvm_read_hits;
    sum.nvm_write_hits += t.counts.nvm_write_hits;
    sum.page_faults += t.counts.page_faults;
    sum.fills_to_dram += t.counts.fills_to_dram;
    sum.fills_to_nvm += t.counts.fills_to_nvm;
    sum.migrations_to_dram += t.counts.migrations_to_dram;
    sum.migrations_to_nvm += t.counts.migrations_to_nvm;
    sum.dirty_evictions += t.counts.dirty_evictions;
  }
  expect_counts_equal(sum, first.totals, "tenant-ledger sum vs totals");

  TenantFuzzOutcome out;
  out.accesses = first.accesses;
  out.tenants = static_cast<std::uint32_t>(first.tenants.size());
  out.reconfigurations = first.reconfigurations;
  out.reconfig_evictions = first.reconfig_evictions;
  out.totals = first.totals;
  out.describe = fc.describe();
  return out;
}

}  // namespace hymem::check
