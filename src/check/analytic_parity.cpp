#include "check/analytic_parity.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "model/probabilities.hpp"
#include "synth/workload_profile.hpp"

namespace hymem::check {

namespace {

double relative_error(double predicted, double simulated) {
  const double denom = std::max(std::abs(simulated), 1e-12);
  return std::abs(predicted - simulated) / denom;
}

ParityErrors cell_errors(const model::AnalyticEstimate& predicted,
                         const sim::RunResult& simulated) {
  const model::TableIProbabilities sim_probs =
      model::probabilities(simulated.counts);
  ParityErrors e;
  e.hit_ratio = std::abs(predicted.hit_ratio -
                         (sim_probs.hit_dram + sim_probs.hit_nvm));
  e.hit_dram = std::abs(predicted.probs.hit_dram - sim_probs.hit_dram);
  e.miss = std::abs(predicted.probs.miss - sim_probs.miss);
  e.amat = relative_error(predicted.amat.total(), simulated.amat().total());
  e.appr = relative_error(predicted.power.total(), simulated.appr().total());
  const double sim_writes_per_access =
      simulated.counts.accesses > 0
          ? static_cast<double>(simulated.nvm_writes().total()) /
                static_cast<double>(simulated.counts.accesses)
          : 0.0;
  e.nvm_writes = predicted.nvm_writes_per_access == 0.0 &&
                         sim_writes_per_access == 0.0
                     ? 0.0
                     : relative_error(predicted.nvm_writes_per_access,
                                      sim_writes_per_access);
  return e;
}

}  // namespace

ParityErrors ParityErrors::max_of(const ParityErrors& a,
                                  const ParityErrors& b) {
  ParityErrors m;
  m.hit_ratio = std::max(a.hit_ratio, b.hit_ratio);
  m.hit_dram = std::max(a.hit_dram, b.hit_dram);
  m.miss = std::max(a.miss, b.miss);
  m.amat = std::max(a.amat, b.amat);
  m.appr = std::max(a.appr, b.appr);
  m.nvm_writes = std::max(a.nvm_writes, b.nvm_writes);
  return m;
}

std::vector<sim::ExperimentConfig> default_parity_grid(
    const sim::ExperimentConfig& base) {
  std::vector<sim::ExperimentConfig> cells;
  // The two-LRU scheme at threshold/window points bracketing the Section IV
  // defaults (8/12 at 10%/30% windows).
  struct Point {
    std::uint64_t read_t, write_t;
    double read_p, write_p;
  };
  const Point points[] = {
      {2, 4, 0.10, 0.30},
      {8, 12, 0.10, 0.30},
      {16, 24, 0.10, 0.30},
      {8, 12, 0.20, 0.50},
  };
  for (const Point& pt : points) {
    sim::ExperimentConfig cfg = base;
    cfg.policy = "two-lru";
    cfg.migration.adaptive = false;
    cfg.migration.read_threshold = pt.read_t;
    cfg.migration.write_threshold = pt.write_t;
    cfg.migration.read_perc = pt.read_p;
    cfg.migration.write_perc = pt.write_p;
    cells.push_back(cfg);
  }
  for (const char* policy : {"dram-only", "nvm-only"}) {
    sim::ExperimentConfig cfg = base;
    cfg.policy = policy;
    cells.push_back(cfg);
  }
  return cells;
}

ParityReport run_analytic_parity(const ParitySpec& spec) {
  const std::vector<sim::ExperimentConfig> cells =
      spec.cells.empty() ? default_parity_grid(spec.base) : spec.cells;
  ParityReport report;
  double analytic_seconds = 0.0;
  std::size_t analytic_evals = 0;
  for (const std::string& workload : spec.workloads) {
    const synth::WorkloadProfile profile = synth::parsec_profile(workload);
    for (const std::uint64_t seed : spec.seeds) {
      const sim::AnalyticWorkload characterized =
          sim::characterize_workload(profile, spec.scale, spec.base, seed);
      for (const sim::ExperimentConfig& cfg : cells) {
        const auto t0 = std::chrono::steady_clock::now();
        const sim::MemorySizing sizing =
            sim::size_memory(characterized.footprint_pages, cfg);
        const model::AnalyticEstimate predicted = model::estimate(
            characterized.profile,
            sim::analytic_config_for(cfg, sizing, characterized.duration_s),
            spec.bias);
        analytic_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        ++analytic_evals;

        const sim::RunResult simulated =
            sim::run_workload(profile, spec.scale, cfg, seed);
        ParityCell cell;
        cell.workload = workload;
        cell.seed = seed;
        cell.policy = cfg.policy;
        cell.migration = cfg.migration;
        cell.predicted = predicted;
        cell.simulated = model::probabilities(simulated.counts);
        cell.errors = cell_errors(predicted, simulated);
        report.worst = ParityErrors::max_of(report.worst, cell.errors);
        report.cells.push_back(std::move(cell));
      }
    }
  }
  if (analytic_seconds > 0.0) {
    report.analytic_evals_per_second =
        static_cast<double>(analytic_evals) / analytic_seconds;
  }
  return report;
}

}  // namespace hymem::check
