// Structural invariant checking for the multi-tenant serving layer
// (tenant::TenantGroup) — the src/check counterpart of sampled_invariants
// for the shared-budget arbitration machinery.
//
// check_invariants() asserts, after any completed operation boundary
// (serve, arrive, depart):
//
//   * budget conservation: the per-shard DRAM/NVM slices sum to exactly the
//     group's shared budget whenever any tenant is active (and to zero when
//     none is), and no shard's residency exceeds its slice;
//   * namespace coverage: summing each tenant's resident pages (probed
//     through its own namespaced IDs) reproduces the shards' residency
//     counts exactly — so no page is resident under two namespaces and no
//     resident page lacks an owner;
//   * teardown: departed tenants hold zero resident pages;
//   * the mechanism-layer ledgers of every live shard are self-consistent
//     (Vmm::check_consistency).
//
// run_tenant_fuzz_case() derives a churn scenario from a seed
// (make_tenant_fuzz_case), replays it with the per-operation audit hook
// installed, replays it a second time from scratch to assert determinism
// (identical totals, per-tenant ledgers and reconfiguration counts), and
// asserts attribution conservation: the per-tenant event ledgers sum to the
// group totals field by field.
#pragma once

#include <cstdint>
#include <string>

#include "model/events.hpp"
#include "tenant/tenant_group.hpp"

namespace hymem::check {

/// Validates all structural invariants of `group`. Throws std::logic_error
/// describing the first violation. Callable mid-run and after finish().
void check_invariants(const tenant::TenantGroup& group);

/// Installs check_invariants as `group`'s audit hook, so every completed
/// serve/arrive/depart is followed by a full structural audit.
void install_invariant_hook(tenant::TenantGroup& group);

/// What one tenant fuzz replay produced (for test assertions).
struct TenantFuzzOutcome {
  std::uint64_t accesses = 0;
  std::uint32_t tenants = 0;  ///< Tenants that ever arrived.
  std::uint64_t reconfigurations = 0;
  std::uint64_t reconfig_evictions = 0;
  model::EventCounts totals;
  /// One-line reproduction header: seed, group shape, schedule shape.
  std::string describe;
};

/// Replays the seed-derived churn scenario with per-operation invariant
/// auditing, then replays it again from scratch and throws std::logic_error
/// if the two runs disagree (determinism oracle) or if the per-tenant
/// ledgers fail to sum to the group totals (attribution conservation).
/// Returns the first run's outcome.
TenantFuzzOutcome run_tenant_fuzz_case(std::uint64_t seed,
                                       std::size_t accesses);

}  // namespace hymem::check
