#include "check/sampled_invariants.hpp"

#include <cstddef>
#include <span>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "check/fuzzer.hpp"
#include "os/vmm.hpp"
#include "trace/interner.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace hymem::check {

void check_invariants(const sample::SampledLruPolicy& policy) {
  const os::Vmm& vmm = policy.vmm();
  const sample::TierQueue& dram = policy.queue(Tier::kDram);
  const sample::TierQueue& nvm = policy.queue(Tier::kNvm);

  // Queue membership: disjoint, and each page resident in the matching
  // tier. Together with the size checks below this is set equality with
  // the VMM's residency — no page can be in both tiers.
  std::unordered_set<PageId> dram_pages;
  dram_pages.reserve(dram.size());
  std::size_t dram_seen = 0;
  dram.for_each([&](PageId page) {
    ++dram_seen;
    HYMEM_CHECK_MSG(dram_pages.insert(page).second,
                    "page listed twice in the DRAM queue");
    HYMEM_CHECK_MSG(vmm.tier_of(page) == Tier::kDram,
                    "DRAM-queued page is not DRAM-resident");
  });
  std::size_t nvm_seen = 0;
  nvm.for_each([&](PageId page) {
    ++nvm_seen;
    HYMEM_CHECK_MSG(!dram_pages.contains(page),
                    "page tracked by both tier queues");
    HYMEM_CHECK_MSG(vmm.tier_of(page) == Tier::kNvm,
                    "NVM-queued page is not NVM-resident");
  });
  HYMEM_CHECK_MSG(dram_seen == dram.size(),
                  "DRAM queue list length disagrees with its index");
  HYMEM_CHECK_MSG(nvm_seen == nvm.size(),
                  "NVM queue list length disagrees with its index");
  HYMEM_CHECK_MSG(dram.size() == vmm.resident(Tier::kDram),
                  "DRAM queue does not cover DRAM residency");
  HYMEM_CHECK_MSG(nvm.size() == vmm.resident(Tier::kNvm),
                  "NVM queue does not cover NVM residency");

  // Ring occupancy within capacity: full rings drop, they never grow.
  HYMEM_CHECK_MSG(policy.hot_ring().size() <= policy.hot_ring().capacity(),
                  "hot ring occupancy exceeds its capacity");
  HYMEM_CHECK_MSG(policy.cold_ring().size() <= policy.cold_ring().capacity(),
                  "cold ring occupancy exceeds its capacity");

  // Migration rate: the last drain applied at most the configured budget.
  const std::uint64_t budget = policy.config().migration_budget;
  if (budget > 0) {
    HYMEM_CHECK_MSG(policy.last_drain_ops() <= budget,
                    "drain applied more candidates than the budget allows");
  }

  // Mechanism-layer ledgers (allocators, endurance vs device/DMA counters).
  vmm.check_consistency();
}

void install_invariant_hook(sample::SampledLruPolicy& policy) {
  policy.set_audit_hook(
      [](const sample::SampledLruPolicy& p, PageId, AccessType) {
        check_invariants(p);
      });
}

namespace {

/// Sampling tunables from the same seed, on a stream distinct from the
/// fuzzer's trace/shape derivation. Small periods and rings so even short
/// fuzz traces exercise crossings, drops, cooling and drains.
sample::SampleConfig sample_config_for(std::uint64_t seed) {
  std::uint64_t s = seed ^ 0xA5F152ED1E6B3C9DULL;
  sample::SampleConfig cfg;
  cfg.sample_period = 1 + splitmix64(s) % 8;
  cfg.ring_capacity = 4ULL << (splitmix64(s) % 4);  // 4..32
  cfg.hot_threshold = 1 + splitmix64(s) % 4;
  cfg.cold_threshold = 1 + splitmix64(s) % cfg.hot_threshold;
  cfg.cooling_period = 16 + splitmix64(s) % 64;
  cfg.drain_period = 8 + splitmix64(s) % 64;
  cfg.migration_budget = splitmix64(s) % 4;  // 0 = unlimited
  cfg.threaded = false;
  return cfg;
}

SampledFuzzOutcome replay(const FuzzCase& fc, const sample::SampleConfig& scfg,
                          bool audit_every_access) {
  os::VmmConfig vcfg;
  vcfg.dram_frames = fc.dram_frames;
  vcfg.nvm_frames = fc.nvm_frames;
  os::Vmm vmm(vcfg);
  sample::SampledLruPolicy policy(vmm, scfg);
  if (audit_every_access) install_invariant_hook(policy);

  const trace::PageIdInterner interner(fc.trace, vcfg.page_size);
  const std::span<const PageId> pages = interner.pages();
  const std::span<const trace::MemAccess> accesses = fc.trace.accesses();
  SampledFuzzOutcome out;
  for (std::size_t i = 0; i < pages.size(); ++i) {
    const Nanoseconds latency = policy.on_access(pages[i], accesses[i].type);
    policy.tap().on_access(pages[i], accesses[i].type, latency);
  }
  check_invariants(policy);
  out.accesses = pages.size();
  out.stats = policy.sampled_stats();
  out.dram_resident = vmm.resident(Tier::kDram);
  out.nvm_resident = vmm.resident(Tier::kNvm);
  return out;
}

void expect_equal(std::uint64_t a, std::uint64_t b, const char* what) {
  if (a != b) {
    std::ostringstream os;
    os << "sampled fuzz replay diverged on " << what << ": " << a << " vs "
       << b << " (virtual-time mode must be deterministic)";
    throw std::logic_error(os.str());
  }
}

}  // namespace

SampledFuzzOutcome run_sampled_fuzz_case(std::uint64_t seed,
                                         std::size_t accesses) {
  const FuzzCase fc = make_fuzz_case(seed, accesses);
  const sample::SampleConfig scfg = sample_config_for(seed);

  std::ostringstream describe;
  describe << fc.describe() << " sample{period=" << scfg.sample_period
           << " ring=" << scfg.ring_capacity << " hot=" << scfg.hot_threshold
           << " cold=" << scfg.cold_threshold
           << " cooling=" << scfg.cooling_period
           << " drain=" << scfg.drain_period
           << " budget=" << scfg.migration_budget << "}";

  SampledFuzzOutcome first = replay(fc, scfg, /*audit_every_access=*/true);
  first.describe = describe.str();

  // Determinism oracle: a fresh second replay (no per-access audit — the
  // hook itself must not affect behavior either) must land on identical
  // state and stats.
  const SampledFuzzOutcome second =
      replay(fc, scfg, /*audit_every_access=*/false);
  expect_equal(first.accesses, second.accesses, "access count");
  expect_equal(first.dram_resident, second.dram_resident, "DRAM residency");
  expect_equal(first.nvm_resident, second.nvm_resident, "NVM residency");
  expect_equal(first.stats.samples, second.stats.samples, "samples");
  expect_equal(first.stats.sample_drops, second.stats.sample_drops,
               "sample drops");
  expect_equal(first.stats.coolings, second.stats.coolings, "coolings");
  expect_equal(first.stats.hot_ring_hwm, second.stats.hot_ring_hwm,
               "hot ring high water");
  expect_equal(first.stats.cold_ring_hwm, second.stats.cold_ring_hwm,
               "cold ring high water");
  expect_equal(first.stats.promotions, second.stats.promotions, "promotions");
  expect_equal(first.stats.demotions, second.stats.demotions, "demotions");
  expect_equal(first.stats.stale_candidates, second.stats.stale_candidates,
               "stale candidates");
  expect_equal(first.stats.migration_copies, second.stats.migration_copies,
               "migration copies");
  expect_equal(first.stats.drains, second.stats.drains, "drains");
  expect_equal(first.stats.backlog, second.stats.backlog, "backlog");
  return first;
}

}  // namespace hymem::check
