// Structural invariant checking for the sampled-hotness policy
// (sample::SampledLruPolicy) — the src/check counterpart of invariants.hpp
// for the async-migration subsystem.
//
// check_invariants() asserts, after any completed access boundary:
//
//   * no page is tracked by both tier queues, and each queue exactly covers
//     the pages the VMM holds resident in the matching tier (so a page is
//     never resident in both tiers);
//   * ring occupancy never exceeds ring capacity (the SPSC rings reject
//     pushes when full — drops are counted, not queued);
//   * the most recent virtual-time drain applied at most migration_budget
//     candidates (the rate bound is exact, not amortized);
//   * the VMM's residency/allocator/endurance ledgers are self-consistent
//     (Vmm::check_consistency).
//
// run_sampled_fuzz_case() derives a scenario from a seed (memory shape and
// trace from the shared fuzzer, sampling tunables from the same splitmix64
// stream), replays it with the per-access audit hook installed, and then
// replays it a second time from scratch to assert the virtual-time mode is
// fully deterministic (identical final stats and event counts).
#pragma once

#include <cstdint>
#include <string>

#include "obs/sampled_stats.hpp"
#include "sample/sampled_policy.hpp"

namespace hymem::check {

/// Validates all structural invariants of `policy` and its VMM. Throws
/// std::logic_error describing the first violation. Threaded-mode callers
/// must quiesce the migrator (stop_background) first.
void check_invariants(const sample::SampledLruPolicy& policy);

/// Installs check_invariants as `policy`'s audit hook, so every on_access
/// is followed by a full structural audit. Virtual-time mode only: in
/// threaded mode the hook would race the background migrator's mutations
/// between the audit's reads.
void install_invariant_hook(sample::SampledLruPolicy& policy);

/// What one sampled fuzz replay produced (for test assertions).
struct SampledFuzzOutcome {
  std::uint64_t accesses = 0;
  obs::SampledStats stats;
  std::uint64_t dram_resident = 0;
  std::uint64_t nvm_resident = 0;
  /// One-line reproduction header: seed, memory shape, sampling tunables.
  std::string describe;
};

/// Replays the seed-derived scenario with per-access invariant auditing,
/// then replays it again from scratch and throws std::logic_error if the
/// two runs disagree (determinism oracle). Returns the first run's outcome.
SampledFuzzOutcome run_sampled_fuzz_case(std::uint64_t seed,
                                         std::size_t accesses);

}  // namespace hymem::check
