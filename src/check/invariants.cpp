#include "check/invariants.hpp"

#include <unordered_set>

#include "util/check.hpp"
#include "util/fraction.hpp"

namespace hymem::check {

void check_invariants(const core::TwoLruMigrationPolicy& policy) {
  const core::DramLruQueue& dram = policy.dram_queue();
  const core::CountedLruQueue& nvm = policy.nvm_queue();
  const os::Vmm& vmm = policy.vmm();

  // Queue sizes within capacity.
  HYMEM_CHECK_MSG(dram.size() <= dram.capacity(),
                  "DRAM queue grew past its capacity");
  HYMEM_CHECK_MSG(nvm.size() <= nvm.capacity(),
                  "NVM queue grew past its capacity");

  // Window targets derive from the configured fractions via the shared
  // round-off-safe rule (0.07 * 100 must give 7, not 8).
  const core::MigrationConfig& cfg = policy.config();
  const auto target = [&](double perc) {
    return util::snap_ceil_fraction(perc, nvm.capacity());
  };
  HYMEM_CHECK_MSG(nvm.read_window_target() == target(cfg.read_perc),
                  "read window target disagrees with readperc");
  HYMEM_CHECK_MSG(nvm.write_window_target() == target(cfg.write_perc),
                  "write window target disagrees with writeperc");

  // Window membership is exactly the configured prefix of the LRU order and
  // counters outside are reset.
  nvm.check_invariants();

  // Queue membership: disjoint, and each page resident in the matching
  // tier.
  std::unordered_set<PageId> dram_pages;
  dram_pages.reserve(dram.size());
  dram.for_each_mru_to_lru([&](PageId page) {
    HYMEM_CHECK_MSG(dram_pages.insert(page).second,
                    "page listed twice in the DRAM queue");
    HYMEM_CHECK_MSG(vmm.tier_of(page) == Tier::kDram,
                    "DRAM-queued page is not DRAM-resident");
  });
  std::size_t nvm_seen = 0;
  nvm.for_each_mru_to_lru([&](PageId page) {
    ++nvm_seen;
    HYMEM_CHECK_MSG(!dram_pages.contains(page),
                    "page resident in both queues");
    HYMEM_CHECK_MSG(vmm.tier_of(page) == Tier::kNvm,
                    "NVM-queued page is not NVM-resident");
  });
  HYMEM_CHECK_MSG(nvm_seen == nvm.size(),
                  "NVM queue list length disagrees with its index");

  // The queues exactly cover the VMM's residency per tier (same sizes plus
  // the per-page tier checks above gives set equality).
  HYMEM_CHECK_MSG(dram.size() == vmm.resident(Tier::kDram),
                  "DRAM queue does not cover DRAM residency");
  HYMEM_CHECK_MSG(nvm.size() == vmm.resident(Tier::kNvm),
                  "NVM queue does not cover NVM residency");

  // Mechanism-layer ledgers (allocators, endurance vs device/DMA counters,
  // NVM physical-write identity).
  vmm.check_consistency();
}

void install_invariant_hook(core::TwoLruMigrationPolicy& policy) {
  policy.set_audit_hook(
      [](const core::TwoLruMigrationPolicy& p, PageId, AccessType) {
        check_invariants(p);
      });
}

}  // namespace hymem::check
