#include "check/reference_model.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/fraction.hpp"

namespace hymem::check {

namespace {

// The oracle deliberately shares the *call* (one spec decision, one home in
// util/fraction.hpp) rather than keeping an independent transcription: the
// snap rule is a spec choice, not a derived behavior worth diffing.
std::size_t window_target(double perc, std::size_t capacity) {
  return util::snap_ceil_fraction(perc, capacity);
}

}  // namespace

ReferenceModel::ReferenceModel(std::size_t dram_frames, std::size_t nvm_frames,
                               const core::MigrationConfig& config,
                               std::uint64_t page_factor)
    : dram_capacity_(dram_frames),
      nvm_capacity_(nvm_frames),
      config_(config),
      page_factor_(page_factor),
      read_target_(window_target(config.read_perc, nvm_frames)),
      write_target_(window_target(config.write_perc, nvm_frames)) {
  HYMEM_CHECK_MSG(dram_frames > 0 && nvm_frames > 0,
                  "the migration scheme needs both modules populated");
  HYMEM_CHECK_MSG(!config.adaptive,
                  "the reference model covers the non-adaptive scheme");
}

std::size_t ReferenceModel::read_window_size() const {
  return std::min(read_target_, nvm_.size());
}

std::size_t ReferenceModel::write_window_size() const {
  return std::min(write_target_, nvm_.size());
}

std::size_t ReferenceModel::position_in_nvm(PageId page) const {
  const auto it = std::find(nvm_.begin(), nvm_.end(), page);
  HYMEM_CHECK_MSG(it != nvm_.end(), "page not in the NVM queue");
  return static_cast<std::size_t>(std::distance(nvm_.begin(), it));
}

void ReferenceModel::reset_counters_outside_windows() {
  // The windows are the top read/write fractions of the queue *positions*;
  // a page at or past a boundary holds no counter (Algorithm 1 lines 8-9).
  std::size_t pos = 0;
  for (const PageId page : nvm_) {
    PageState& st = state_.at(page);
    if (pos >= read_window_size()) st.read_ctr = 0;
    if (pos >= write_window_size()) st.write_ctr = 0;
    ++pos;
  }
}

bool ReferenceModel::admit_promotion() {
  if (config_.max_promotions_per_kacc == 0) return true;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void ReferenceModel::demote_dram_victim(Decision& d) {
  HYMEM_CHECK_MSG(!dram_.empty(), "demotion from an empty DRAM queue");
  const PageId victim = dram_.back();
  if (nvm_.size() >= nvm_capacity_) {
    // Eviction chain: the NVM LRU victim leaves to disk (dirty pages cost a
    // disk page-out; clean pages are dropped).
    const PageId nvm_victim = nvm_.back();
    d.evicted = nvm_victim;
    d.evicted_dirty = state_.at(nvm_victim).dirty;
    if (d.evicted_dirty) ++counts_.dirty_evictions;
    nvm_.pop_back();
    state_.erase(nvm_victim);
  }
  dram_.pop_back();
  PageState& st = state_.at(victim);
  st.tier = Tier::kNvm;
  st.read_ctr = 0;
  st.write_ctr = 0;
  st.open_promotion = false;
  st.promo_hits = 0;
  nvm_.push_front(victim);
  ++counts_.migrations_to_nvm;
  counts_.nvm_migration_cell_writes += page_factor_;
  ++demotions_;
  d.demoted = victim;
  reset_counters_outside_windows();
}

void ReferenceModel::promote(PageId page, Decision& d) {
  if (dram_.size() < dram_capacity_) {
    nvm_.erase(std::find(nvm_.begin(), nvm_.end(), page));
  } else {
    // Swap: the DRAM LRU victim takes the promoted page's place in the NVM
    // queue head; one migration is charged in each direction.
    const PageId victim = dram_.back();
    dram_.pop_back();
    nvm_.erase(std::find(nvm_.begin(), nvm_.end(), page));
    PageState& vs = state_.at(victim);
    vs.tier = Tier::kNvm;
    vs.read_ctr = 0;
    vs.write_ctr = 0;
    vs.open_promotion = false;
    vs.promo_hits = 0;
    nvm_.push_front(victim);
    ++counts_.migrations_to_nvm;
    counts_.nvm_migration_cell_writes += page_factor_;
    ++demotions_;
    d.demoted = victim;
  }
  PageState& st = state_.at(page);
  st.tier = Tier::kDram;
  st.read_ctr = 0;
  st.write_ctr = 0;
  st.open_promotion = true;
  st.promo_hits = 0;
  dram_.push_front(page);
  ++counts_.migrations_to_dram;
  ++promotions_;
  reset_counters_outside_windows();
}

Decision ReferenceModel::on_access(PageId page, AccessType type) {
  ++counts_.accesses;
  if (config_.max_promotions_per_kacc > 0) {
    tokens_ = std::min(
        static_cast<double>(config_.max_promotions_per_kacc),
        tokens_ + static_cast<double>(config_.max_promotions_per_kacc) / 1000.0);
  }
  Decision d;
  const auto it = state_.find(page);
  if (it != state_.end() && it->second.tier == Tier::kDram) {
    // Algorithm 1 lines 2-3: plain LRU housekeeping in DRAM.
    d.outcome = Outcome::kDramHit;
    if (type == AccessType::kRead) {
      ++counts_.dram_read_hits;
    } else {
      ++counts_.dram_write_hits;
      it->second.dirty = true;
    }
    if (it->second.open_promotion) ++it->second.promo_hits;
    dram_.erase(std::find(dram_.begin(), dram_.end(), page));
    dram_.push_front(page);
    return d;
  }
  if (it != state_.end()) {
    // Lines 5-25: served by NVM. Update the windowed counter for the access
    // type; promote only past the threshold.
    d.outcome = Outcome::kNvmHit;
    if (type == AccessType::kRead) {
      ++counts_.nvm_read_hits;
    } else {
      ++counts_.nvm_write_hits;
      ++counts_.nvm_demand_cell_writes;
      it->second.dirty = true;
    }
    const std::size_t pos = position_in_nvm(page);
    const bool is_read = type == AccessType::kRead;
    const std::size_t window =
        is_read ? read_window_size() : write_window_size();
    const bool was_in = pos < window;
    nvm_.erase(std::find(nvm_.begin(), nvm_.end(), page));
    nvm_.push_front(page);
    // Lines 10-22: increment inside the window, restart at 1 when
    // (re-)entering from outside; a zero-width window tracks nothing.
    const bool now_in =
        is_read ? read_window_size() > 0 : write_window_size() > 0;
    std::uint64_t& ctr = is_read ? it->second.read_ctr : it->second.write_ctr;
    ctr = now_in ? (was_in ? ctr + 1 : 1) : 0;
    reset_counters_outside_windows();
    const std::uint64_t threshold =
        is_read ? config_.read_threshold : config_.write_threshold;
    if (ctr > threshold) {
      if (admit_promotion()) {
        d.outcome = Outcome::kPromotion;
        promote(page, d);
      } else {
        d.throttled = true;
        ++throttled_;
      }
    }
    return d;
  }
  // Lines 27-28: every page fault fills DRAM; demote the DRAM LRU victim
  // first when DRAM is full.
  d.outcome = Outcome::kFault;
  if (dram_.size() >= dram_capacity_) demote_dram_victim(d);
  ++counts_.page_faults;
  ++counts_.fills_to_dram;
  PageState st;
  st.tier = Tier::kDram;
  // A write fault's data arrives with the disk fill: the page is born dirty
  // but no demand memory access is billed.
  st.dirty = type == AccessType::kWrite;
  state_.emplace(page, st);
  dram_.push_front(page);
  return d;
}

std::optional<Tier> ReferenceModel::tier_of(PageId page) const {
  const auto it = state_.find(page);
  if (it == state_.end()) return std::nullopt;
  return it->second.tier;
}

std::vector<PageId> ReferenceModel::dram_mru_to_lru() const {
  return {dram_.begin(), dram_.end()};
}

std::vector<PageId> ReferenceModel::nvm_mru_to_lru() const {
  return {nvm_.begin(), nvm_.end()};
}

std::uint64_t ReferenceModel::read_counter(PageId page) const {
  return state_.at(page).read_ctr;
}

std::uint64_t ReferenceModel::write_counter(PageId page) const {
  return state_.at(page).write_ctr;
}

bool ReferenceModel::in_read_window(PageId page) const {
  return position_in_nvm(page) < read_window_size();
}

bool ReferenceModel::in_write_window(PageId page) const {
  return position_in_nvm(page) < write_window_size();
}

std::optional<std::uint64_t> ReferenceModel::promotion_hits(PageId page) const {
  const auto it = state_.find(page);
  if (it == state_.end() || !it->second.open_promotion) return std::nullopt;
  return it->second.promo_hits;
}

}  // namespace hymem::check
