// Differential harness: the optimized sim stack vs the reference oracle.
//
// run_differential() replays one trace through both implementations in
// lockstep and diffs, per access, the placement decision (hit tier /
// fault / promotion, the demoted and evicted victims, rate-limiter
// throttling) and the running event counters; periodically and at the end
// it deep-diffs the complete state — both LRU orders, every windowed
// counter and window membership, open-promotion scores — and finally
// cross-checks the raw event counts and the Eq. 1/2/3 + endurance model
// outputs against the oracle's independent recomputation.
//
// run_fuzz_case() wraps it for fuzzing: derive a FuzzCase from a seed,
// diff it, and on divergence shrink the trace to a minimal repro and
// format a reproduction report.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "check/fuzzer.hpp"
#include "check/reference_model.hpp"
#include "core/migration_config.hpp"
#include "trace/trace.hpp"

namespace hymem::check {

/// What to replay and how strictly to watch it.
struct DiffSpec {
  std::size_t dram_frames = 0;
  std::size_t nvm_frames = 0;
  core::MigrationConfig migration;
  /// Run the full structural invariant audit after every access (the
  /// HYMEM_CHECK hook in the policy). Catches corruption at the access
  /// that caused it instead of at the next observable divergence.
  bool invariants_every_access = true;
  /// Deep state diff (queue orders, counters, windows) every N accesses;
  /// 0 = only at the end. The per-access decision diff always runs.
  std::size_t deep_diff_stride = 64;
  /// MUTATION-CHECK KNOB — leave at 0 for real checking. A non-zero value
  /// biases the *oracle's* promotion thresholds by that amount, turning the
  /// oracle into a deliberately off-by-one specification. The harness must
  /// then report a divergence; tests use this to prove the diff actually
  /// bites (and the shrinker to prove minimal repros come out).
  std::int64_t oracle_threshold_bias = 0;

  static DiffSpec from_fuzz(const FuzzCase& fc) {
    DiffSpec spec;
    spec.dram_frames = fc.dram_frames;
    spec.nvm_frames = fc.nvm_frames;
    spec.migration = fc.migration;
    return spec;
  }
};

/// First point where the two implementations disagreed.
struct Divergence {
  static constexpr std::size_t kEndOfRun = ~static_cast<std::size_t>(0);
  /// Index of the diverging access, or kEndOfRun for end-state-only
  /// divergence (counters/metrics).
  std::size_t access_index = kEndOfRun;
  std::string what;
};

struct DiffResult {
  std::uint64_t accesses = 0;
  std::optional<Divergence> divergence;

  bool ok() const { return !divergence.has_value(); }
};

/// Replays `trace` (page-granular, default page size) through both stacks.
DiffResult run_differential(const trace::Trace& trace, const DiffSpec& spec);

/// One fuzz iteration: derive, diff, shrink on failure.
struct FuzzReport {
  FuzzCase fuzz;
  DiffResult result;
  /// Greedily minimized repro; empty when the case passed.
  trace::Trace minimal;
  /// Human-readable reproduction report (seed line, divergence, minimal
  /// trace); empty when the case passed.
  std::string summary;

  bool ok() const { return result.ok(); }
};

FuzzReport run_fuzz_case(std::uint64_t seed, std::size_t accesses,
                         std::int64_t oracle_threshold_bias = 0);

}  // namespace hymem::check
