#include "check/fuzzer.hpp"

#include <algorithm>
#include <sstream>

#include "util/fraction.hpp"
#include "util/random.hpp"
#include "util/units.hpp"
#include "util/zipf.hpp"

namespace hymem::check {

namespace {

/// Window size (in queue positions) the scheme will use — the shared
/// round-off-safe rule, so the thrash segment can straddle the exact
/// boundary.
std::size_t window_positions(double perc, std::size_t capacity) {
  return util::snap_ceil_fraction(perc, capacity);
}

template <typename T, std::size_t N>
const T& pick(Rng& rng, const T (&options)[N]) {
  return options[rng.next_below(N)];
}

}  // namespace

FuzzCase make_fuzz_case(std::uint64_t seed, std::size_t accesses) {
  // Seed derivation follows the runner's splitmix64 convention: one stream
  // per concern, all reproducible from the case seed.
  std::uint64_t state = seed;
  Rng shape_rng(splitmix64(state));
  Rng trace_rng(splitmix64(state));

  FuzzCase fc;
  fc.seed = seed;

  // Memory shape. Deliberately tiny so eviction chains, swaps and window
  // boundaries fire constantly; includes the capacity==1 corner.
  static constexpr std::size_t kDramShapes[] = {1, 2, 3, 4, 7, 8, 16, 32, 64};
  static constexpr std::size_t kNvmShapes[] = {1, 2, 3, 5, 8, 16, 48, 96, 192};
  fc.dram_frames = pick(shape_rng, kDramShapes);
  fc.nvm_frames = pick(shape_rng, kNvmShapes);
  if (shape_rng.next_bool(0.05)) fc.dram_frames = fc.nvm_frames = 1;

  // Scheme tunables: fractions that make perc*capacity fractional, plus the
  // degenerate zero-width and whole-queue windows.
  static constexpr double kPercs[] = {0.0, 0.05, 0.1, 0.25, 1.0 / 3.0,
                                      0.5, 0.75, 0.9,  1.0};
  static constexpr std::uint64_t kThresholds[] = {0, 1, 2, 3, 5, 8};
  fc.migration.read_perc = pick(shape_rng, kPercs);
  fc.migration.write_perc = pick(shape_rng, kPercs);
  fc.migration.read_threshold = pick(shape_rng, kThresholds);
  fc.migration.write_threshold =
      fc.migration.read_threshold + shape_rng.next_below(5);
  // Exercise the promotion rate limiter on a fifth of the cases.
  static constexpr std::uint64_t kRates[] = {1, 5, 50};
  fc.migration.max_promotions_per_kacc =
      shape_rng.next_bool(0.2) ? pick(shape_rng, kRates) : 0;

  // Page universe: enough pages to overflow both modules but small enough
  // that reuse (hits, promotions) dominates.
  const std::size_t capacity = fc.dram_frames + fc.nvm_frames;
  const std::size_t universe =
      std::max<std::size_t>(4, capacity + 1 + shape_rng.next_below(3 * capacity + 1));

  fc.trace.set_name("fuzz-" + std::to_string(seed));
  fc.trace.reserve(accesses);
  const auto emit = [&](PageId page, AccessType type) {
    fc.trace.append(page * kDefaultPageSize, type);
  };
  const auto rand_type = [&](double write_ratio) {
    return trace_rng.next_bool(write_ratio) ? AccessType::kWrite
                                            : AccessType::kRead;
  };

  const std::size_t read_window =
      window_positions(fc.migration.read_perc, fc.nvm_frames);
  const std::size_t write_window =
      window_positions(fc.migration.write_perc, fc.nvm_frames);

  while (fc.trace.size() < accesses) {
    const std::size_t remaining = accesses - fc.trace.size();
    const std::size_t segment =
        std::min<std::size_t>(remaining, 16 + trace_rng.next_below(256));
    switch (trace_rng.next_below(7)) {
      case 0: {  // Zipf hot-set: the workload shape the scheme targets.
        const ZipfSampler zipf(universe,
                               0.6 + 0.8 * trace_rng.next_double());
        const double wr = trace_rng.next_double();
        for (std::size_t i = 0; i < segment; ++i) {
          emit(zipf.sample(trace_rng), rand_type(wr));
        }
        break;
      }
      case 1: {  // Sequential ramp (cold misses, steady demotion pressure).
        const PageId base = trace_rng.next_below(universe);
        for (std::size_t i = 0; i < segment; ++i) {
          emit((base + i) % (2 * universe), rand_type(0.3));
        }
        break;
      }
      case 2: {  // Scan: repeated sweep wider than memory (thrash).
        const std::size_t span = capacity + 1 + trace_rng.next_below(capacity);
        for (std::size_t i = 0; i < segment; ++i) {
          emit(i % span, rand_type(0.1));
        }
        break;
      }
      case 3: {  // Phase change: successive small hot sets.
        const std::size_t hot = 1 + trace_rng.next_below(
                                        std::max<std::size_t>(1, capacity / 2));
        const PageId base = trace_rng.next_below(universe);
        const double wr = trace_rng.next_double();
        for (std::size_t i = 0; i < segment; ++i) {
          emit(base + trace_rng.next_below(hot), rand_type(wr));
        }
        break;
      }
      case 4: {  // All-write burst over few pages (write-threshold pressure).
        const std::size_t hot = 1 + trace_rng.next_below(4);
        for (std::size_t i = 0; i < segment; ++i) {
          emit(trace_rng.next_below(hot), AccessType::kWrite);
        }
        break;
      }
      case 5: {  // Single-page hammer (counter saturation, repeat promotion).
        const PageId page = trace_rng.next_below(universe);
        const double wr = trace_rng.next_double();
        for (std::size_t i = 0; i < segment; ++i) emit(page, rand_type(wr));
        break;
      }
      default: {  // Thrash exactly one page past a window boundary: each
                  // round trip pushes the previous page out of the window,
                  // resetting its counter — the adversarial shape for the
                  // boundary bookkeeping.
        const std::size_t window =
            trace_rng.next_bool(0.5) ? read_window : write_window;
        const std::size_t loop = window + 1 + trace_rng.next_below(2);
        const AccessType type = trace_rng.next_bool(0.5) ? AccessType::kWrite
                                                         : AccessType::kRead;
        for (std::size_t i = 0; i < segment; ++i) emit(i % loop, type);
        break;
      }
    }
  }
  return fc;
}

std::string FuzzCase::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " dram=" << dram_frames << " nvm=" << nvm_frames
     << " read_perc=" << migration.read_perc
     << " write_perc=" << migration.write_perc
     << " read_thr=" << migration.read_threshold
     << " write_thr=" << migration.write_threshold
     << " promo/kacc=" << migration.max_promotions_per_kacc
     << " accesses=" << trace.size();
  return os.str();
}

TenantFuzzCase make_tenant_fuzz_case(std::uint64_t seed,
                                     std::size_t accesses) {
  // Distinct stream from the single-process fuzzer so the same seed range
  // explores independent scenarios.
  std::uint64_t state = seed ^ 0x7E9A1CB3D2F45687ULL;
  Rng rng(splitmix64(state));

  TenantFuzzCase fc;
  fc.seed = seed;

  // Group shape. Budgets deliberately tiny so floor-of-1 slices, partition
  // flushes and eviction chains fire constantly; the shard count is added
  // on top so every populated shard can always be given its floor frame.
  static constexpr const char* kPolicies[] = {
      "two-lru",   "two-lru-adaptive", "clock-dwf",
      "dram-cache", "static-partition", "rank-mq"};
  static constexpr std::uint64_t kDramShapes[] = {2, 3, 4, 8, 16, 32};
  static constexpr std::uint64_t kNvmShapes[] = {4, 8, 16, 48, 96};
  fc.group.policy = pick(rng, kPolicies);
  fc.group.shards = 1 + static_cast<unsigned>(rng.next_below(3));
  fc.group.dram_frames = pick(rng, kDramShapes) + fc.group.shards;
  fc.group.nvm_frames = pick(rng, kNvmShapes) + fc.group.shards;
  fc.group.budget_mode =
      static_cast<tenant::BudgetMode>(rng.next_below(3));
  fc.group.rebalance_period =
      rng.next_bool(0.5) ? 32 + rng.next_below(128) : 0;
  fc.group.epoch_accesses = rng.next_bool(0.3) ? 64 : 0;

  // Tenant population: small per-tenant footprints so the shared budget is
  // always oversubscribed.
  const auto n = static_cast<std::uint32_t>(1 + rng.next_below(6));
  for (std::uint32_t t = 0; t < n; ++t) {
    synth::TenantProfile p;
    p.kind = static_cast<synth::TenantWorkloadKind>(rng.next_below(3));
    p.pages = 4 + rng.next_below(37);
    p.hot_fraction = 0.1 + 0.4 * rng.next_double();
    p.hot_locality = 0.5 + 0.5 * rng.next_double();
    p.zipf_alpha = 0.6 + 0.8 * rng.next_double();
    p.write_fraction = rng.next_double();
    p.rate_weight = 1 + rng.next_below(4);
    fc.spec.tenants.push_back(p);
  }
  fc.spec.name = "tenant-fuzz-" + std::to_string(seed);
  fc.spec.total_accesses = accesses;
  fc.spec.seed = splitmix64(state);

  // Schedule shape.
  switch (rng.next_below(5)) {
    case 0:  // Steady population, no churn.
      fc.spec.initial_active = n;
      break;
    case 1:  // Stochastic churn with re-arrival.
      fc.spec.initial_active = 1 + static_cast<std::uint32_t>(
                                       rng.next_below(n));
      fc.spec.arrival_prob = 0.002 + 0.01 * rng.next_double();
      fc.spec.departure_prob = 0.001 + 0.005 * rng.next_double();
      fc.spec.rearrival = true;
      break;
    case 2:  // Flash crowd mid-run.
      fc.spec.initial_active = 1;
      fc.spec.flash_at = accesses / 3;
      fc.spec.flash_arrivals = n;
      break;
    case 3: {  // Scripted cliff: everyone departs, then everyone returns.
      fc.spec.initial_active = n;
      fc.spec.rearrival = true;
      for (std::uint32_t t = 0; t < n; ++t) {
        fc.spec.schedule.push_back({accesses / 3, t, /*arrive=*/false});
        fc.spec.schedule.push_back({2 * accesses / 3, t, /*arrive=*/true});
      }
      break;
    }
    default:  // Empty start: the group idles until arrivals trickle in.
      fc.spec.initial_active = 0;
      fc.spec.arrival_prob = 0.01 + 0.02 * rng.next_double();
      fc.spec.departure_prob = 0.002 * rng.next_double();
      fc.spec.rearrival = rng.next_bool(0.5);
      break;
  }
  return fc;
}

std::string TenantFuzzCase::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " policy=" << group.policy
     << " mode=" << tenant::to_string(group.budget_mode)
     << " shards=" << group.shards << " dram=" << group.dram_frames
     << " nvm=" << group.nvm_frames
     << " rebalance=" << group.rebalance_period
     << " tenants=" << spec.tenants.size()
     << " initial=" << spec.initial_active
     << " arrive_p=" << spec.arrival_prob
     << " depart_p=" << spec.departure_prob
     << " flash=" << spec.flash_arrivals << "@" << spec.flash_at
     << " scheduled=" << spec.schedule.size()
     << " accesses=" << spec.total_accesses;
  return os.str();
}

std::string format_tenant_ops(const std::vector<synth::TenantOp>& ops,
                              std::uint64_t page_size) {
  std::ostringstream os;
  bool first = true;
  for (const synth::TenantOp& op : ops) {
    if (!first) os << ' ';
    first = false;
    switch (op.kind) {
      case synth::TenantOp::Kind::kArrive: os << '+' << op.tenant; break;
      case synth::TenantOp::Kind::kDepart: os << '-' << op.tenant; break;
      default:
        os << op.tenant
           << (op.access.type == AccessType::kWrite ? 'W' : 'R')
           << op.access.addr / page_size;
        break;
    }
  }
  return os.str();
}

std::string format_trace(const trace::Trace& trace) {
  std::ostringstream os;
  bool first = true;
  for (const trace::MemAccess& a : trace) {
    if (!first) os << ' ';
    first = false;
    os << (a.type == AccessType::kWrite ? 'W' : 'R')
       << a.addr / kDefaultPageSize;
  }
  return os.str();
}

}  // namespace hymem::check
