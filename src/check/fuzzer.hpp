// Randomized trace + configuration fuzzing for the differential harness.
//
// Every fuzz case is a pure function of (seed, accesses): the memory shape
// (including adversarial capacity-1 modules), the scheme's window fractions
// and thresholds (including fractional perc*capacity products and zero/full
// windows), and a trace stitched from hostile segment shapes — zipf
// hot-sets, sequential ramps, scans wider than memory, phase changes,
// all-write bursts, single-page hammers, and thrash loops sized exactly one
// past the NVM window boundaries. Seeds derive through the same splitmix64
// convention as the sweep runner, so a failing case is reproducible from
// its seed alone.
#pragma once

#include <cstdint>
#include <string>

#include "core/migration_config.hpp"
#include "synth/tenant_stream.hpp"
#include "tenant/tenant_group.hpp"
#include "trace/trace.hpp"

namespace hymem::check {

/// One deterministic fuzz scenario.
struct FuzzCase {
  std::uint64_t seed = 0;
  std::size_t dram_frames = 0;
  std::size_t nvm_frames = 0;
  core::MigrationConfig migration;
  trace::Trace trace;

  /// One-line reproduction header: seed, shape, tunables.
  std::string describe() const;
};

/// Derives the full scenario for `seed` with (about) `accesses` requests.
FuzzCase make_fuzz_case(std::uint64_t seed, std::size_t accesses);

/// Renders a trace as one "R<page>"/"W<page>" token per access — the
/// representation shrunken repros are reported in.
std::string format_trace(const trace::Trace& trace);

/// One deterministic multi-tenant fuzz scenario: a tenant-group shape plus
/// a churn-stream spec, both pure functions of the seed. Schedule shapes
/// cover the churn corners: steady populations, stochastic arrive/depart
/// with re-arrival, flash crowds, scripted all-depart-then-arrive cliffs,
/// and empty starts.
struct TenantFuzzCase {
  std::uint64_t seed = 0;
  tenant::TenantGroupConfig group;
  synth::TenantChurnSpec spec;

  /// One-line reproduction header: seed, group shape, schedule shape.
  std::string describe() const;
};

/// Derives the full multi-tenant scenario for `seed` with (about)
/// `accesses` served requests.
TenantFuzzCase make_tenant_fuzz_case(std::uint64_t seed,
                                     std::size_t accesses);

/// Renders a tenant op stream as one token per op ("+2" arrive, "-2"
/// depart, "2R7"/"2W7" tenant-2 access to local page 7) — the
/// representation shrunken tenant repros are reported in.
std::string format_tenant_ops(const std::vector<synth::TenantOp>& ops,
                              std::uint64_t page_size);

}  // namespace hymem::check
