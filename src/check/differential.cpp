#include "check/differential.hpp"

#include <sstream>
#include <vector>

#include "check/invariants.hpp"
#include "check/oracle_metrics.hpp"
#include "check/shrink.hpp"
#include "model/endurance_model.hpp"
#include "model/events.hpp"
#include "model/perf_model.hpp"
#include "model/power_model.hpp"
#include "os/vmm.hpp"
#include "trace/access.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace hymem::check {

namespace {

/// Wall time handed to the power model; arbitrary but shared by both sides.
constexpr double kDurationS = 0.01;

core::MigrationConfig biased(core::MigrationConfig cfg, std::int64_t bias) {
  cfg.read_threshold =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(cfg.read_threshold) + bias);
  cfg.write_threshold =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(cfg.write_threshold) + bias);
  return cfg;
}

std::string join_pages(const std::vector<PageId>& pages) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < pages.size(); ++i) {
    if (i > 0) os << ' ';
    os << pages[i];
  }
  os << ']';
  return os.str();
}

/// Decision reconstructed from the optimized stack's observable state and
/// counter deltas around one on_access call.
struct SimProbe {
  std::optional<Tier> pre_tier;
  std::optional<PageId> pre_nvm_victim;
  std::uint64_t pre_promotions = 0;
  std::uint64_t pre_demotions = 0;
  std::uint64_t pre_throttled = 0;
  std::uint64_t pre_page_outs = 0;

  static SimProbe before(const core::TwoLruMigrationPolicy& policy,
                         PageId page) {
    SimProbe p;
    p.pre_tier = policy.vmm().tier_of(page);
    p.pre_nvm_victim = policy.nvm_queue().lru_victim();
    p.pre_promotions = policy.promotions();
    p.pre_demotions = policy.demotions();
    p.pre_throttled = policy.throttled_promotions();
    p.pre_page_outs = policy.vmm().disk().page_outs();
    return p;
  }

  Decision after(const core::TwoLruMigrationPolicy& policy, PageId page) const {
    Decision d;
    if (!pre_tier.has_value()) {
      d.outcome = Outcome::kFault;
    } else if (*pre_tier == Tier::kDram) {
      d.outcome = Outcome::kDramHit;
    } else {
      d.outcome = policy.promotions() > pre_promotions ? Outcome::kPromotion
                                                       : Outcome::kNvmHit;
    }
    d.throttled = policy.throttled_promotions() > pre_throttled;
    if (policy.demotions() > pre_demotions) {
      // Any demotion (fault- or promotion-forced) leaves the DRAM victim at
      // the NVM queue head.
      const auto front = [&] {
        PageId first = kInvalidPage;
        bool taken = false;
        policy.nvm_queue().for_each_mru_to_lru([&](PageId p) {
          if (!taken) {
            first = p;
            taken = true;
          }
        });
        return first;
      };
      d.demoted = front();
    }
    // An eviction chain (only possible on a fault into full memory) removes
    // the pre-access NVM LRU victim from memory entirely.
    if (pre_nvm_victim.has_value() && page != *pre_nvm_victim &&
        !policy.vmm().tier_of(*pre_nvm_victim).has_value()) {
      d.evicted = *pre_nvm_victim;
      d.evicted_dirty = policy.vmm().disk().page_outs() > pre_page_outs;
    }
    return d;
  }
};

std::optional<std::string> diff_decisions(const Decision& sim,
                                          const Decision& oracle) {
  std::ostringstream os;
  if (sim.outcome != oracle.outcome) {
    os << "outcome: sim " << to_string(sim.outcome) << " vs oracle "
       << to_string(oracle.outcome);
    return os.str();
  }
  if (sim.demoted != oracle.demoted) {
    os << "demoted victim: sim " << static_cast<std::int64_t>(sim.demoted)
       << " vs oracle " << static_cast<std::int64_t>(oracle.demoted);
    return os.str();
  }
  if (sim.evicted != oracle.evicted) {
    os << "evicted victim: sim " << static_cast<std::int64_t>(sim.evicted)
       << " vs oracle " << static_cast<std::int64_t>(oracle.evicted);
    return os.str();
  }
  if (sim.evicted_dirty != oracle.evicted_dirty) {
    os << "eviction dirtiness: sim " << sim.evicted_dirty << " vs oracle "
       << oracle.evicted_dirty;
    return os.str();
  }
  if (sim.throttled != oracle.throttled) {
    os << "throttling: sim " << sim.throttled << " vs oracle "
       << oracle.throttled;
    return os.str();
  }
  return std::nullopt;
}

/// Queue orders, windowed counters, window membership, promotion scores.
std::optional<std::string> deep_diff(
    const core::TwoLruMigrationPolicy& policy, const ReferenceModel& oracle) {
  std::vector<PageId> sim_dram;
  policy.dram_queue().for_each_mru_to_lru(
      [&](PageId p) { sim_dram.push_back(p); });
  const std::vector<PageId> ref_dram = oracle.dram_mru_to_lru();
  if (sim_dram != ref_dram) {
    return "DRAM LRU order: sim " + join_pages(sim_dram) + " vs oracle " +
           join_pages(ref_dram);
  }
  std::vector<PageId> sim_nvm;
  policy.nvm_queue().for_each_mru_to_lru(
      [&](PageId p) { sim_nvm.push_back(p); });
  const std::vector<PageId> ref_nvm = oracle.nvm_mru_to_lru();
  if (sim_nvm != ref_nvm) {
    return "NVM LRU order: sim " + join_pages(sim_nvm) + " vs oracle " +
           join_pages(ref_nvm);
  }
  for (const PageId page : sim_nvm) {
    const core::CountedLruQueue& q = policy.nvm_queue();
    if (q.in_read_window(page) != oracle.in_read_window(page) ||
        q.in_write_window(page) != oracle.in_write_window(page)) {
      std::ostringstream os;
      os << "window membership of page " << page << ": sim r/w "
         << q.in_read_window(page) << '/' << q.in_write_window(page)
         << " vs oracle " << oracle.in_read_window(page) << '/'
         << oracle.in_write_window(page);
      return os.str();
    }
    if (q.read_counter(page) != oracle.read_counter(page) ||
        q.write_counter(page) != oracle.write_counter(page)) {
      std::ostringstream os;
      os << "counters of page " << page << ": sim r/w "
         << q.read_counter(page) << '/' << q.write_counter(page)
         << " vs oracle " << oracle.read_counter(page) << '/'
         << oracle.write_counter(page);
      return os.str();
    }
  }
  for (const PageId page : sim_dram) {
    const auto sim_score = policy.dram_queue().promotion_hits(page);
    const auto ref_score = oracle.promotion_hits(page);
    if (sim_score != ref_score) {
      std::ostringstream os;
      os << "promotion score of page " << page << ": sim "
         << (sim_score ? static_cast<std::int64_t>(*sim_score) : -1)
         << " vs oracle "
         << (ref_score ? static_cast<std::int64_t>(*ref_score) : -1);
      return os.str();
    }
  }
  return std::nullopt;
}

/// Raw event-count ledgers, then the model outputs vs the oracle's
/// independent probability-form recomputation.
std::optional<std::string> diff_end_state(
    const core::TwoLruMigrationPolicy& policy, const ReferenceModel& oracle,
    std::uint64_t accesses) {
  const os::Vmm& vmm = policy.vmm();
  const model::EventCounts sim =
      model::EventCounts::from_vmm(vmm, accesses);
  const ReferenceCounts& ref = oracle.counts();
  const auto count = [](const char* name, std::uint64_t a,
                        std::uint64_t b) -> std::optional<std::string> {
    if (a == b) return std::nullopt;
    std::ostringstream os;
    os << name << ": sim " << a << " vs oracle " << b;
    return os.str();
  };
  if (auto d = count("dram_read_hits", sim.dram_read_hits, ref.dram_read_hits))
    return d;
  if (auto d =
          count("dram_write_hits", sim.dram_write_hits, ref.dram_write_hits))
    return d;
  if (auto d = count("nvm_read_hits", sim.nvm_read_hits, ref.nvm_read_hits))
    return d;
  if (auto d = count("nvm_write_hits", sim.nvm_write_hits, ref.nvm_write_hits))
    return d;
  if (auto d = count("page_faults", sim.page_faults, ref.page_faults)) return d;
  if (auto d = count("fills_to_dram", sim.fills_to_dram, ref.fills_to_dram))
    return d;
  if (auto d = count("fills_to_nvm", sim.fills_to_nvm, ref.fills_to_nvm))
    return d;
  if (auto d = count("migrations_to_dram", sim.migrations_to_dram,
                     ref.migrations_to_dram))
    return d;
  if (auto d = count("migrations_to_nvm", sim.migrations_to_nvm,
                     ref.migrations_to_nvm))
    return d;
  if (auto d =
          count("dirty_evictions", sim.dirty_evictions, ref.dirty_evictions))
    return d;
  // NVM physical-write ledger: the endurance tracker against the oracle's
  // independent cell-write accounting.
  const mem::EnduranceTracker& wear = vmm.nvm_endurance();
  if (auto d = count("nvm demand cell writes",
                     wear.writes_from(mem::NvmWriteSource::kDemandWrite),
                     ref.nvm_demand_cell_writes))
    return d;
  if (auto d = count("nvm fill cell writes",
                     wear.writes_from(mem::NvmWriteSource::kPageFault),
                     ref.nvm_fill_cell_writes))
    return d;
  if (auto d = count("nvm migration cell writes",
                     wear.writes_from(mem::NvmWriteSource::kMigration),
                     ref.nvm_migration_cell_writes))
    return d;
  // Model outputs: Eq. 1/2/3 + endurance breakdown.
  const model::ModelParams params = model::ModelParams::from_vmm(vmm);
  const OracleMetrics recomputed =
      recompute_metrics(ref, params, vmm.page_factor(), kDurationS);
  return diff_metrics(recomputed, model::amat(sim, params),
                      model::appr(sim, params, kDurationS),
                      model::nvm_writes(sim));
}

}  // namespace

DiffResult run_differential(const trace::Trace& trace, const DiffSpec& spec) {
  HYMEM_CHECK_MSG(!trace.empty(), "differential run over an empty trace");
  os::VmmConfig vmm_config;
  vmm_config.dram_frames = spec.dram_frames;
  vmm_config.nvm_frames = spec.nvm_frames;
  os::Vmm vmm(vmm_config);
  core::TwoLruMigrationPolicy policy(vmm, spec.migration);
  if (spec.invariants_every_access) install_invariant_hook(policy);
  ReferenceModel oracle(spec.dram_frames, spec.nvm_frames,
                        biased(spec.migration, spec.oracle_threshold_bias),
                        vmm.page_factor());

  DiffResult result;
  const std::uint64_t page_size = vmm.config().page_size;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const PageId page = trace::page_of(trace[i].addr, page_size);
    const AccessType type = trace[i].type;
    const SimProbe probe = SimProbe::before(policy, page);
    Decision sim_decision;
    try {
      policy.on_access(page, type);
      sim_decision = probe.after(policy, page);
    } catch (const std::logic_error& e) {
      // An invariant tripped mid-access: report it at this index.
      result.accesses = i + 1;
      result.divergence = Divergence{i, std::string("invariant: ") + e.what()};
      return result;
    }
    ++result.accesses;
    const Decision ref_decision = oracle.on_access(page, type);
    if (auto d = diff_decisions(sim_decision, ref_decision)) {
      result.divergence = Divergence{i, "decision: " + *d};
      return result;
    }
    if (policy.vmm().tier_of(page) != oracle.tier_of(page)) {
      result.divergence = Divergence{i, "placement of the accessed page"};
      return result;
    }
    const bool deep_now =
        spec.deep_diff_stride != 0 && (i + 1) % spec.deep_diff_stride == 0;
    if (deep_now || i + 1 == trace.size()) {
      if (auto d = deep_diff(policy, oracle)) {
        result.divergence = Divergence{i, "state: " + *d};
        return result;
      }
    }
  }
  if (auto d = diff_end_state(policy, oracle, result.accesses)) {
    result.divergence = Divergence{Divergence::kEndOfRun, "end state: " + *d};
  }
  return result;
}

FuzzReport run_fuzz_case(std::uint64_t seed, std::size_t accesses,
                         std::int64_t oracle_threshold_bias) {
  FuzzReport report;
  report.fuzz = make_fuzz_case(seed, accesses);
  DiffSpec spec = DiffSpec::from_fuzz(report.fuzz);
  spec.oracle_threshold_bias = oracle_threshold_bias;
  report.result = run_differential(report.fuzz.trace, spec);
  if (report.result.ok()) return report;

  // Shrink: keep only what still diverges under the same spec. Invariant
  // audits stay on so corruption-type failures shrink too.
  report.minimal = shrink_trace(
      report.fuzz.trace, [&spec](const trace::Trace& candidate) {
        return !run_differential(candidate, spec).ok();
      });
  const DiffResult minimal_result = run_differential(report.minimal, spec);

  std::ostringstream os;
  os << "differential divergence\n"
     << "  case:   " << report.fuzz.describe() << "\n"
     << "  first:  ";
  if (report.result.divergence->access_index == Divergence::kEndOfRun) {
    os << "end of run";
  } else {
    os << "access " << report.result.divergence->access_index;
  }
  os << " — " << report.result.divergence->what << "\n"
     << "  shrunk: " << report.minimal.size() << " accesses (from "
     << report.fuzz.trace.size() << ")\n"
     << "  repro:  " << format_trace(report.minimal) << "\n"
     << "  reason: "
     << (minimal_result.divergence ? minimal_result.divergence->what
                                   : std::string("(no longer fails?)"))
     << "\n"
     << "  rerun:  run_differential(trace, spec) with the case line above";
  report.summary = os.str();
  return report;
}

}  // namespace hymem::check
