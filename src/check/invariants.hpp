// Structural invariant checking for the two-LRU migration scheme.
//
// check_invariants() asserts, in one pass over the policy's queues and the
// VMM's ledgers, everything that must hold after any completed access:
//
//   * no page is resident in both queues;
//   * each queue's size is within its capacity, and the queues exactly
//     cover the pages the VMM holds resident in the matching tier;
//   * windowed-counter membership matches the configured readperc/writeperc
//     prefixes (CountedLruQueue::check_invariants);
//   * the VMM's residency/allocator/endurance ledgers are self-consistent —
//     in particular, NVM physical writes equal demand write hits plus
//     PageFactor * (fault fills + DRAM->NVM demotions)
//     (Vmm::check_consistency).
//
// Violations throw std::logic_error (via HYMEM_CHECK) so tests can assert
// on them and fuzz harnesses can shrink the offending trace. The checker is
// O(resident pages); install_invariant_hook() wires it into the policy's
// per-access audit hook for debug runs.
#pragma once

#include "core/migration_scheme.hpp"

namespace hymem::check {

/// Validates all structural invariants of `policy` and its VMM. Throws
/// std::logic_error describing the first violation.
void check_invariants(const core::TwoLruMigrationPolicy& policy);

/// Installs check_invariants as `policy`'s audit hook, so every on_access
/// is followed by a full structural audit (the HYMEM_CHECK debug hook).
void install_invariant_hook(core::TwoLruMigrationPolicy& policy);

}  // namespace hymem::check
