#include "check/stream_parity.hpp"

#include <memory>
#include <sstream>

#include "core/migration_scheme.hpp"
#include "os/vmm.hpp"
#include "sim/engine.hpp"
#include "sim/results_io.hpp"
#include "trace/block_source.hpp"
#include "trace/stream_io.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace hymem::check {

namespace {

constexpr double kDurationS = 1.0;

/// Fresh policy stack for one replay: every mode starts from cold memory.
struct Stack {
  os::Vmm vmm;
  core::TwoLruMigrationPolicy policy;

  explicit Stack(const FuzzCase& fc)
      : vmm([&fc] {
          os::VmmConfig config;
          config.dram_frames = fc.dram_frames;
          config.nvm_frames = fc.nvm_frames;
          return config;
        }()),
        policy(vmm, fc.migration) {}
};

/// The HYTS serialization of the case's trace (what a capture would ship).
std::string encode_stream(const trace::Trace& trace,
                          std::size_t chunk_records) {
  std::ostringstream bytes;
  trace::StreamTraceWriter writer(bytes, trace.name(), chunk_records);
  for (const auto& access : trace.accesses()) writer.append(access);
  writer.finish();
  return bytes.str();
}

}  // namespace

StreamParityResult run_stream_parity(const FuzzCase& fc,
                                     std::size_t block_accesses) {
  HYMEM_CHECK_MSG(!fc.trace.empty(), "stream parity over an empty trace");
  HYMEM_CHECK_MSG(block_accesses > 0, "block size must be positive");
  StreamParityResult out;
  out.accesses = fc.trace.size();

  const std::uint64_t page_size = [&fc] {
    Stack probe(fc);
    return probe.vmm.config().page_size;
  }();

  std::string reference;
  {
    Stack stack(fc);
    reference =
        sim::to_json(sim::run_trace(stack.policy, fc.trace, kDurationS));
  }

  const auto diff = [&](const char* mode, const sim::RunResult& result) {
    const std::string got = sim::to_json(result);
    if (got == reference) return true;
    // Name the first differing line so the report points at a field, not
    // just at the mode.
    std::istringstream want_lines(reference);
    std::istringstream got_lines(got);
    std::string want_line;
    std::string got_line;
    while (std::getline(want_lines, want_line) &&
           std::getline(got_lines, got_line)) {
      if (want_line != got_line) break;
    }
    out.divergence = std::string(mode) + ": reference " + want_line +
                     " != " + got_line;
    return false;
  };

  {
    Stack stack(fc);
    trace::TraceBlockSource source(fc.trace, page_size, block_accesses);
    if (!diff("blocks",
              sim::run_blocks(stack.policy, source, kDurationS))) {
      return out;
    }
  }
  {
    Stack stack(fc);
    trace::TraceBlockSource source(fc.trace, page_size, block_accesses,
                                   /*decode_workers=*/4);
    if (!diff("blocks+striped-decode",
              sim::run_blocks(stack.policy, source, kDurationS))) {
      return out;
    }
  }
  const std::string bytes = encode_stream(fc.trace, block_accesses);
  for (const bool readahead : {false, true}) {
    Stack stack(fc);
    std::istringstream in(bytes);
    trace::StreamBlockSource source(in, page_size, block_accesses, readahead);
    if (!diff(readahead ? "stream+readahead" : "stream",
              sim::run_blocks(stack.policy, source, kDurationS))) {
      return out;
    }
  }
  return out;
}

StreamParityResult run_stream_parity_case(std::uint64_t seed,
                                          std::size_t accesses) {
  const FuzzCase fc = make_fuzz_case(seed, accesses);
  // Block size from the seed's own stream: 1 (degenerate per-access blocks)
  // up past the trace length (one whole-trace block).
  std::uint64_t state = seed ^ 0x5741525354524dULL;
  const std::size_t block_accesses =
      1 + static_cast<std::size_t>(splitmix64(state) %
                                   (fc.trace.size() + 7));
  return run_stream_parity(fc, block_accesses);
}

}  // namespace hymem::check
