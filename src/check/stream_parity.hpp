// Stream-parity harness: the streaming/block replay engines vs the serial
// reference engine.
//
// The block engine (sim::run_blocks) promises byte-identical results to the
// one-access-at-a-time reference loop (sim::run_trace) for every ingest
// mode: decode-once blocks of any size, striped decode on any worker count,
// and the O(chunk) double-buffered stream of the HYTS format with readahead
// on or off. run_stream_parity() pins that promise the same way the
// differential harness pins the oracle: replay one trace through every
// mode and diff the complete serialized RunResult (counts, latencies,
// derived Eq. 1/2/3 metrics) against the reference.
//
// run_stream_parity_case() wraps it for fuzzing: the trace and memory shape
// derive from a seed through the same check/fuzzer scenarios that feed the
// differential harness, so the hostile shapes (thrash loops, write bursts,
// capacity-1 modules) exercise the streaming seam too.
#pragma once

#include <cstdint>
#include <string>

#include "check/fuzzer.hpp"
#include "trace/trace.hpp"

namespace hymem::check {

/// Outcome of one parity sweep over every ingest mode.
struct StreamParityResult {
  std::uint64_t accesses = 0;
  /// Name of the first diverging mode plus the field-level diff context;
  /// empty when every mode reproduced the reference bytes.
  std::string divergence;

  bool ok() const { return divergence.empty(); }
};

/// Replays `fc.trace` on `fc`'s memory shape through the reference engine
/// and through each block/stream ingest mode with `block_accesses`-sized
/// blocks, diffing full serialized results.
StreamParityResult run_stream_parity(const FuzzCase& fc,
                                     std::size_t block_accesses);

/// One fuzz iteration: derive the scenario for `seed`, sweep every mode.
/// The block size also derives from the seed (1 to ~accesses, covering the
/// degenerate one-access blocks and the whole-trace block).
StreamParityResult run_stream_parity_case(std::uint64_t seed,
                                          std::size_t accesses);

}  // namespace hymem::check
