#include "check/shrink.hpp"

#include <map>
#include <vector>

#include "util/check.hpp"
#include "util/units.hpp"

namespace hymem::check {

namespace {

trace::Trace from_accesses(const std::vector<trace::MemAccess>& accesses,
                           const std::string& name) {
  trace::Trace t(name);
  t.reserve(accesses.size());
  for (const trace::MemAccess& a : accesses) t.append(a);
  return t;
}

}  // namespace

trace::Trace shrink_trace(const trace::Trace& failing,
                          const FailurePredicate& still_fails,
                          std::size_t max_predicate_calls) {
  HYMEM_CHECK_MSG(!failing.empty(), "cannot shrink an empty trace");
  const std::string name = failing.name() + "-min";
  std::vector<trace::MemAccess> best(failing.begin(), failing.end());
  std::size_t calls = 0;
  const auto fails = [&](const std::vector<trace::MemAccess>& candidate) {
    ++calls;
    return !candidate.empty() && still_fails(from_accesses(candidate, name));
  };

  // Delta debugging: remove [i, i+chunk) wherever the failure survives,
  // halving the chunk until single accesses, and restarting from the large
  // chunks after any whole pass that removed something.
  bool progress = true;
  while (progress && calls < max_predicate_calls) {
    progress = false;
    for (std::size_t chunk = best.size() / 2; chunk >= 1; chunk /= 2) {
      for (std::size_t i = 0; i + chunk <= best.size() &&
                              calls < max_predicate_calls;) {
        std::vector<trace::MemAccess> candidate;
        candidate.reserve(best.size() - chunk);
        candidate.insert(candidate.end(), best.begin(),
                         best.begin() + static_cast<std::ptrdiff_t>(i));
        candidate.insert(
            candidate.end(),
            best.begin() + static_cast<std::ptrdiff_t>(i + chunk), best.end());
        if (fails(candidate)) {
          best = std::move(candidate);
          progress = true;
          // Do not advance: the next chunk shifted into position i.
        } else {
          ++i;
        }
      }
      if (chunk == 1) break;
    }
  }

  // Canonicalize: renumber pages densely in order of first appearance, so
  // repros read as "page 0, page 1, ..." regardless of the original
  // addresses.
  std::map<PageId, PageId> renumber;
  std::vector<trace::MemAccess> canonical = best;
  for (trace::MemAccess& a : canonical) {
    const PageId page = trace::page_of(a.addr, kDefaultPageSize);
    const auto [it, _] = renumber.try_emplace(page, renumber.size());
    a.addr = it->second * kDefaultPageSize;
  }
  if (calls < max_predicate_calls && fails(canonical)) best = canonical;

  return from_accesses(best, name);
}

std::vector<synth::TenantOp> shrink_tenant_ops(
    const std::vector<synth::TenantOp>& failing,
    const TenantOpsPredicate& still_fails,
    std::size_t max_predicate_calls) {
  HYMEM_CHECK_MSG(!failing.empty(), "cannot shrink an empty op stream");
  std::vector<synth::TenantOp> best = failing;
  std::size_t calls = 0;
  const auto fails = [&](const std::vector<synth::TenantOp>& candidate) {
    ++calls;
    return !candidate.empty() && still_fails(candidate);
  };

  // Same delta-debugging loop as shrink_trace: remove [i, i+chunk)
  // wherever the failure survives, halving the chunk to single ops, and
  // restarting after any pass that removed something.
  bool progress = true;
  while (progress && calls < max_predicate_calls) {
    progress = false;
    for (std::size_t chunk = best.size() / 2; chunk >= 1; chunk /= 2) {
      for (std::size_t i = 0;
           i + chunk <= best.size() && calls < max_predicate_calls;) {
        std::vector<synth::TenantOp> candidate;
        candidate.reserve(best.size() - chunk);
        candidate.insert(candidate.end(), best.begin(),
                         best.begin() + static_cast<std::ptrdiff_t>(i));
        candidate.insert(
            candidate.end(),
            best.begin() + static_cast<std::ptrdiff_t>(i + chunk),
            best.end());
        if (fails(candidate)) {
          best = std::move(candidate);
          progress = true;
          // Do not advance: the next chunk shifted into position i.
        } else {
          ++i;
        }
      }
      if (chunk == 1) break;
    }
  }
  return best;
}

}  // namespace hymem::check
