// Cross-validation harness for the analytic estimator (model/analytic):
// predicted-vs-simulated over fuzz seeds × a Table III-style config grid,
// reporting per-metric error so tests can pin tolerances.
//
// This is the differential-testing pattern of check/differential applied one
// level up: the reference is the full simulator (run_workload), the subject
// is the closed-form estimator, and a deliberate-bias knob (AnalyticBias,
// mirroring DiffSpec::oracle_threshold_bias) lets the suite prove the
// harness actually detects a wrong model term.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/analytic.hpp"
#include "sim/experiment.hpp"

namespace hymem::check {

/// Per-metric prediction error for one cell. Probability-type metrics use
/// absolute error (they live in [0, 1] and the simulated value can be 0);
/// cost metrics use error relative to the simulated value.
struct ParityErrors {
  double hit_ratio = 0.0;   ///< |pred - sim| of PHitDRAM + PHitNVM.
  double hit_dram = 0.0;    ///< |pred - sim| of PHitDRAM (tier split).
  double miss = 0.0;        ///< |pred - sim| of PMiss.
  double amat = 0.0;        ///< Relative, Eq. 1 total ns.
  double appr = 0.0;        ///< Relative, Eq. 2+3 total nJ.
  double nvm_writes = 0.0;  ///< Relative, physical NVM writes per access
                            ///< (the lifetime estimate's only moving part).

  /// Field-wise maximum of two error sets.
  static ParityErrors max_of(const ParityErrors& a, const ParityErrors& b);
};

/// One evaluated (workload, seed, config) cell.
struct ParityCell {
  std::string workload;
  std::uint64_t seed = 0;
  std::string policy;
  core::MigrationConfig migration;
  model::AnalyticEstimate predicted;
  model::TableIProbabilities simulated;
  ParityErrors errors;
};

/// What to validate. `base` supplies sizing/technology; `cells` the config
/// grid (empty = default_parity_grid(base)). `bias` is the mutation-check
/// knob — nonzero bias must blow the pinned tolerances.
struct ParitySpec {
  std::vector<std::string> workloads{"canneal", "streamcluster"};
  std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6, 7, 8};
  std::uint64_t scale = 512;
  sim::ExperimentConfig base;
  std::vector<sim::ExperimentConfig> cells;
  model::AnalyticBias bias;
};

/// The Table III-style grid the parity gate runs: the two-LRU scheme across
/// threshold/window points bracketing the paper's defaults, plus the two
/// single-tier baselines.
std::vector<sim::ExperimentConfig> default_parity_grid(
    const sim::ExperimentConfig& base);

struct ParityReport {
  std::vector<ParityCell> cells;
  ParityErrors worst;
  /// Analytic throughput observed while filling the report (estimates per
  /// second, characterization excluded) — the prescreen speed headline.
  double analytic_evals_per_second = 0.0;
};

/// Runs every (workload, seed, cell): one characterization per (workload,
/// seed), one simulation and one estimate per cell.
ParityReport run_analytic_parity(const ParitySpec& spec);

}  // namespace hymem::check
