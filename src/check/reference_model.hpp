// Executable specification of the paper's migration scheme (Section IV,
// Algorithm 1), written for obviousness rather than speed.
//
// The optimized stack (core/ + os/) earns its keep with flat maps, slab
// pools and incremental window boundaries; this model is the yardstick it
// is measured against. Queues are std::list, per-page state is std::map,
// and window membership is *recomputed from positions* after every queue
// mutation — a direct transcription of the paper text with no shared code
// (and deliberately no shared data structures) with the simulator. The
// differential harness (check/differential.hpp) replays the same trace
// through both and diffs every decision.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "core/migration_config.hpp"
#include "util/types.hpp"

namespace hymem::check {

/// Observable placement outcome of one access under the scheme.
enum class Outcome : std::uint8_t {
  kDramHit = 0,   ///< Served by DRAM; plain LRU housekeeping.
  kNvmHit,        ///< Served by NVM; counter updated, below threshold.
  kPromotion,     ///< Served by NVM; counter crossed, page moved to DRAM.
  kFault,         ///< Page fault; filled into DRAM.
};

constexpr std::string_view to_string(Outcome o) {
  switch (o) {
    case Outcome::kDramHit: return "dram-hit";
    case Outcome::kNvmHit: return "nvm-hit";
    case Outcome::kPromotion: return "promotion";
    default: return "fault";
  }
}

/// Everything the scheme decided for one access.
struct Decision {
  Outcome outcome = Outcome::kDramHit;
  /// DRAM LRU victim demoted into the NVM queue head (capacity-forced, by a
  /// fault or a promotion into a full DRAM); kInvalidPage if none.
  PageId demoted = kInvalidPage;
  /// NVM LRU victim evicted to disk to make room for the demotion;
  /// kInvalidPage if none.
  PageId evicted = kInvalidPage;
  /// The eviction cost a disk page-out (victim was dirty).
  bool evicted_dirty = false;
  /// A threshold crossing was suppressed by the promotion rate limiter.
  bool throttled = false;
};

/// Event counts tracked by the reference model — the same ledger
/// model::EventCounts snapshots from the VMM, derived completely
/// independently, plus the per-source NVM physical cell-write breakdown of
/// the endurance model.
struct ReferenceCounts {
  std::uint64_t accesses = 0;
  std::uint64_t dram_read_hits = 0;
  std::uint64_t dram_write_hits = 0;
  std::uint64_t nvm_read_hits = 0;
  std::uint64_t nvm_write_hits = 0;
  std::uint64_t page_faults = 0;
  std::uint64_t fills_to_dram = 0;
  std::uint64_t fills_to_nvm = 0;  ///< Always 0: all faults fill DRAM.
  std::uint64_t migrations_to_dram = 0;
  std::uint64_t migrations_to_nvm = 0;
  std::uint64_t dirty_evictions = 0;
  // NVM physical cell writes per source (endurance accounting): a demand
  // write is 1, a fill or DRAM->NVM migration is PageFactor.
  std::uint64_t nvm_demand_cell_writes = 0;
  std::uint64_t nvm_fill_cell_writes = 0;
  std::uint64_t nvm_migration_cell_writes = 0;

  std::uint64_t dram_hits() const { return dram_read_hits + dram_write_hits; }
  std::uint64_t nvm_hits() const { return nvm_read_hits + nvm_write_hits; }
  std::uint64_t hits() const { return dram_hits() + nvm_hits(); }
  std::uint64_t nvm_cell_writes() const {
    return nvm_demand_cell_writes + nvm_fill_cell_writes +
           nvm_migration_cell_writes;
  }
};

/// The naive two-LRU migration scheme: DRAM-fault placement, windowed
/// read/write counters over the NVM queue, threshold promotions, demotion
/// chain to disk, and the optional promotion token bucket. Adaptive
/// thresholds are out of scope (the controller is feedback state, not part
/// of Algorithm 1).
class ReferenceModel {
 public:
  ReferenceModel(std::size_t dram_frames, std::size_t nvm_frames,
                 const core::MigrationConfig& config,
                 std::uint64_t page_factor);

  /// Serves one access per Algorithm 1 and reports what was decided.
  Decision on_access(PageId page, AccessType type);

  const ReferenceCounts& counts() const { return counts_; }
  std::uint64_t promotions() const { return promotions_; }
  std::uint64_t demotions() const { return demotions_; }
  std::uint64_t throttled_promotions() const { return throttled_; }

  // --- State introspection (differential diffing) --------------------------
  std::optional<Tier> tier_of(PageId page) const;
  std::vector<PageId> dram_mru_to_lru() const;
  std::vector<PageId> nvm_mru_to_lru() const;
  std::uint64_t read_counter(PageId page) const;
  std::uint64_t write_counter(PageId page) const;
  bool in_read_window(PageId page) const;
  bool in_write_window(PageId page) const;
  /// Open-promotion hit score; nullopt when `page` is not an open promotion.
  std::optional<std::uint64_t> promotion_hits(PageId page) const;

  std::size_t read_window_size() const;
  std::size_t write_window_size() const;

 private:
  struct PageState {
    Tier tier = Tier::kDram;
    bool dirty = false;
    std::uint64_t read_ctr = 0;
    std::uint64_t write_ctr = 0;
    bool open_promotion = false;
    std::uint64_t promo_hits = 0;
  };

  std::size_t position_in_nvm(PageId page) const;
  /// Re-derives window membership from queue positions: every counter
  /// outside the top read/write fraction is reset (Algorithm 1 lines 8-9).
  void reset_counters_outside_windows();
  /// Demotes the DRAM LRU victim into the NVM queue head, evicting the NVM
  /// LRU victim to disk first when NVM is full. Records into `d`.
  void demote_dram_victim(Decision& d);
  /// Moves `page` (NVM-resident) into DRAM, demoting a DRAM victim when
  /// DRAM is full. Records into `d`.
  void promote(PageId page, Decision& d);
  bool admit_promotion();

  std::size_t dram_capacity_;
  std::size_t nvm_capacity_;
  core::MigrationConfig config_;
  std::uint64_t page_factor_;
  std::size_t read_target_;
  std::size_t write_target_;
  std::list<PageId> dram_;  // front = MRU
  std::list<PageId> nvm_;   // front = MRU
  std::map<PageId, PageState> state_;
  ReferenceCounts counts_;
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t throttled_ = 0;
  double tokens_ = 0.0;
};

}  // namespace hymem::check
