// Independent recomputation of the paper's analytic models (Eq. 1 AMAT,
// Eq. 2 APPR, Eq. 3 static power, and the endurance write breakdown) from
// raw event counts.
//
// src/model implements the equations in *counts form* (every probability
// multiplied out, so 0/0 corners vanish). This oracle recomputes them in
// the *probability form the paper publishes* — PHitDRAM, PRDRAM, PMiss,
// PMigD, ... — from a ReferenceCounts ledger the reference model tracked
// itself. The two derivations are mathematically identical, so the
// differential harness requires them to agree to floating-point noise; any
// larger gap means one side's accounting drifted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "check/reference_model.hpp"
#include "model/endurance_model.hpp"
#include "model/model_params.hpp"
#include "model/perf_model.hpp"
#include "model/power_model.hpp"

namespace hymem::check {

/// The oracle's view of every derived metric.
struct OracleMetrics {
  // Eq. 1 (ns per request).
  double amat_hit_ns = 0;
  double amat_fault_ns = 0;
  double amat_migration_ns = 0;
  // Eq. 2 + Eq. 3 (nJ per request).
  double appr_static_nj = 0;
  double appr_hit_nj = 0;
  double appr_fault_fill_nj = 0;
  double appr_migration_nj = 0;
  // Endurance: NVM physical writes per source, in device-access units.
  std::uint64_t nvm_demand_writes = 0;
  std::uint64_t nvm_fault_fill_writes = 0;
  std::uint64_t nvm_migration_writes = 0;

  double amat_total_ns() const {
    return amat_hit_ns + amat_fault_ns + amat_migration_ns;
  }
  double appr_total_nj() const {
    return appr_static_nj + appr_hit_nj + appr_fault_fill_nj +
           appr_migration_nj;
  }
};

/// Recomputes Eqs. 1-3 and the endurance breakdown in probability form.
/// `page_factor` must match the configuration the counts were produced
/// under; `duration_s` is the ROI wall time prorating static power.
OracleMetrics recompute_metrics(const ReferenceCounts& counts,
                                const model::ModelParams& params,
                                std::uint64_t page_factor, double duration_s);

/// Compares the oracle's metrics against the production models' output.
/// Doubles compare with relative tolerance `rel_tol`; endurance counts
/// compare exactly. Returns a description of the first mismatch, or
/// nullopt when everything agrees.
std::optional<std::string> diff_metrics(const OracleMetrics& oracle,
                                        const model::AmatBreakdown& amat,
                                        const model::PowerBreakdown& appr,
                                        const model::NvmWriteBreakdown& writes,
                                        double rel_tol = 1e-9);

}  // namespace hymem::check
