#include "check/oracle_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace hymem::check {

namespace {

/// a / b with the convention 0/0 = 0 (an absent event class contributes no
/// probability mass).
double ratio(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
}

}  // namespace

OracleMetrics recompute_metrics(const ReferenceCounts& c,
                                const model::ModelParams& p,
                                std::uint64_t page_factor, double duration_s) {
  HYMEM_CHECK_MSG(c.accesses > 0, "metrics of an empty run");
  const std::uint64_t n = c.accesses;
  const double pf = static_cast<double>(page_factor);

  // The paper's Table I probabilities.
  const double p_hit_dram = ratio(c.dram_hits(), n);
  const double p_hit_nvm = ratio(c.nvm_hits(), n);
  const double p_miss = ratio(c.page_faults, n);
  const double p_r_dram = ratio(c.dram_read_hits, c.dram_hits());
  const double p_w_dram = ratio(c.dram_write_hits, c.dram_hits());
  const double p_r_nvm = ratio(c.nvm_read_hits, c.nvm_hits());
  const double p_w_nvm = ratio(c.nvm_write_hits, c.nvm_hits());
  const double p_mig_d = ratio(c.migrations_to_dram, n);
  const double p_mig_n = ratio(c.migrations_to_nvm, n);
  const double p_disk_to_d = ratio(c.fills_to_dram, c.page_faults);
  const double p_disk_to_n = ratio(c.fills_to_nvm, c.page_faults);

  // Migration latency composition: DMA sums source read + destination
  // write; an integrated module overlaps them.
  const auto compose = [&](Nanoseconds read_ns, Nanoseconds write_ns) {
    return p.transfer_mode == mem::TransferMode::kDma
               ? read_ns + write_ns
               : std::max(read_ns, write_ns);
  };

  OracleMetrics m;
  // Eq. 1 verbatim.
  m.amat_hit_ns = p_hit_dram * (p_r_dram * p.dram.read_latency_ns +
                                p_w_dram * p.dram.write_latency_ns) +
                  p_hit_nvm * (p_r_nvm * p.nvm.read_latency_ns +
                               p_w_nvm * p.nvm.write_latency_ns);
  m.amat_fault_ns = p_miss * p.disk_latency_ns;
  m.amat_migration_ns =
      p_mig_d * pf * compose(p.nvm.read_latency_ns, p.dram.write_latency_ns) +
      p_mig_n * pf * compose(p.dram.read_latency_ns, p.nvm.write_latency_ns);

  // Eq. 2 verbatim.
  m.appr_hit_nj = p_hit_dram * (p_r_dram * p.dram.read_energy_nj +
                                p_w_dram * p.dram.write_energy_nj) +
                  p_hit_nvm * (p_r_nvm * p.nvm.read_energy_nj +
                               p_w_nvm * p.nvm.write_energy_nj);
  m.appr_fault_fill_nj =
      p_miss * p_disk_to_d * pf * p.dram.write_energy_nj +
      p_miss * p_disk_to_n * pf * p.nvm.write_energy_nj;
  m.appr_migration_nj =
      p_mig_d * pf * (p.nvm.read_energy_nj + p.dram.write_energy_nj) +
      p_mig_n * pf * (p.dram.read_energy_nj + p.nvm.write_energy_nj);
  // Eq. 3: both modules' static power over the ROI, prorated per request.
  m.appr_static_nj =
      p.total_static_power() * duration_s * 1e9 / static_cast<double>(n);

  // Endurance breakdown straight from the oracle's cell-write ledger (the
  // reference model charges 1 per demand write and PageFactor per page
  // moved, independently of the event counts above).
  m.nvm_demand_writes = c.nvm_demand_cell_writes;
  m.nvm_fault_fill_writes = c.nvm_fill_cell_writes;
  m.nvm_migration_writes = c.nvm_migration_cell_writes;
  return m;
}

namespace {

bool close(double a, double b, double rel_tol) {
  return std::abs(a - b) <= rel_tol * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace

std::optional<std::string> diff_metrics(const OracleMetrics& m,
                                        const model::AmatBreakdown& amat,
                                        const model::PowerBreakdown& appr,
                                        const model::NvmWriteBreakdown& writes,
                                        double rel_tol) {
  const auto mismatch = [&](const char* name, double oracle,
                            double sim) -> std::string {
    std::ostringstream os;
    os.precision(17);
    os << name << ": oracle recomputation " << oracle << " vs model " << sim;
    return os.str();
  };
  if (!close(m.amat_hit_ns, amat.hit_ns, rel_tol))
    return mismatch("amat_hit_ns", m.amat_hit_ns, amat.hit_ns);
  if (!close(m.amat_fault_ns, amat.fault_ns, rel_tol))
    return mismatch("amat_fault_ns", m.amat_fault_ns, amat.fault_ns);
  if (!close(m.amat_migration_ns, amat.migration_ns, rel_tol))
    return mismatch("amat_migration_ns", m.amat_migration_ns,
                    amat.migration_ns);
  if (!close(m.appr_static_nj, appr.static_nj, rel_tol))
    return mismatch("appr_static_nj", m.appr_static_nj, appr.static_nj);
  if (!close(m.appr_hit_nj, appr.hit_nj, rel_tol))
    return mismatch("appr_hit_nj", m.appr_hit_nj, appr.hit_nj);
  if (!close(m.appr_fault_fill_nj, appr.fault_fill_nj, rel_tol))
    return mismatch("appr_fault_fill_nj", m.appr_fault_fill_nj,
                    appr.fault_fill_nj);
  if (!close(m.appr_migration_nj, appr.migration_nj, rel_tol))
    return mismatch("appr_migration_nj", m.appr_migration_nj,
                    appr.migration_nj);
  if (m.nvm_demand_writes != writes.demand_writes)
    return mismatch("nvm_demand_writes",
                    static_cast<double>(m.nvm_demand_writes),
                    static_cast<double>(writes.demand_writes));
  if (m.nvm_fault_fill_writes != writes.fault_fill_writes)
    return mismatch("nvm_fault_fill_writes",
                    static_cast<double>(m.nvm_fault_fill_writes),
                    static_cast<double>(writes.fault_fill_writes));
  if (m.nvm_migration_writes != writes.migration_writes)
    return mismatch("nvm_migration_writes",
                    static_cast<double>(m.nvm_migration_writes),
                    static_cast<double>(writes.migration_writes));
  return std::nullopt;
}

}  // namespace hymem::check
