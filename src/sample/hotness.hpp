// Per-page sampled-hotness table: the estimator side of the subsystem.
//
// Every sampled access bumps a per-page counter; a page becomes a promotion
// candidate exactly when its counter crosses the hot threshold from below
// (so a steadily hot page enters the candidate ring once per heat-up, not
// once per sample). Periodically every counter is halved — HeMem-style
// cooling — which both ages stale heat and generates demotion candidates:
// pages whose counter falls below the cold threshold during a pass.
//
// The board is sampling state owned by the tap; policies never read it.
// Residency filtering (only NVM pages promote, only DRAM pages demote)
// happens in the tap, which can see the VMM.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/flat_page_map.hpp"
#include "util/types.hpp"

namespace hymem::sample {

/// Sampled access counters with threshold-crossing detection and periodic
/// cooling. Single-threaded: lives on whichever thread runs the tap.
class HotnessBoard {
 public:
  HotnessBoard(std::uint64_t hot_threshold, std::uint64_t cold_threshold);

  /// Counts one sample of `page`. Returns true exactly when this sample
  /// lifts the counter across the hot threshold from below.
  bool record(PageId page);

  /// Halves every counter (one cooling pass). Pages whose counter crosses
  /// below the cold threshold are reported through `on_cold` (after the
  /// halving completes, in table order); counters that reach zero are
  /// pruned so the table tracks only warm pages.
  template <typename Fn>
  void cool(Fn&& on_cold) {
    cold_scratch_.clear();
    dead_scratch_.clear();
    counts_.for_each([this](PageId page, std::uint64_t& count) {
      const std::uint64_t before = count;
      count /= 2;
      if (before >= cold_threshold_ && count < cold_threshold_) {
        cold_scratch_.push_back(page);
      }
      if (count == 0) dead_scratch_.push_back(page);
    });
    for (const PageId page : dead_scratch_) counts_.erase(page);
    for (const PageId page : cold_scratch_) on_cold(page);
  }

  /// Current counter of `page` (0 when untracked).
  std::uint64_t value(PageId page) const {
    const std::uint64_t* found = counts_.find(page);
    return found != nullptr ? *found : 0;
  }

  /// Number of pages with a nonzero counter.
  std::size_t tracked() const { return counts_.size(); }

  std::uint64_t hot_threshold() const { return hot_threshold_; }
  std::uint64_t cold_threshold() const { return cold_threshold_; }

 private:
  std::uint64_t hot_threshold_;
  std::uint64_t cold_threshold_;
  util::FlatPageMap<std::uint64_t> counts_;
  // Reused across cooling passes: erase/callback must not run while
  // for_each walks the table (backward-shift erase moves entries).
  std::vector<PageId> cold_scratch_;
  std::vector<PageId> dead_scratch_;
};

}  // namespace hymem::sample
