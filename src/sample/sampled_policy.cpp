#include "sample/sampled_policy.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "util/check.hpp"

namespace hymem::sample {

SampledLruPolicy::SampledLruPolicy(os::Vmm& vmm, const SampleConfig& config)
    : HybridPolicy(vmm),
      config_(config),
      hot_ring_(static_cast<std::size_t>(config.ring_capacity)),
      cold_ring_(static_cast<std::size_t>(config.ring_capacity)),
      // &mu_ is a stable address even though mu_ constructs later; the tap
      // only locks it once accesses flow.
      tap_(config, vmm, hot_ring_, cold_ring_,
           config.threaded ? &mu_ : nullptr),
      dram_queue_(static_cast<std::size_t>(vmm.frames(Tier::kDram))),
      nvm_queue_(static_cast<std::size_t>(vmm.frames(Tier::kNvm))) {
  HYMEM_CHECK_MSG(config.drain_period > 0, "drain period must be positive");
  // Join the migrator when the engine announces run end through the
  // observer seam: the engine's final VMM reads (EventCounts::from_vmm)
  // then happen-after the last background mutation. No-op in virtual-time
  // mode (no thread to join).
  tap_.set_run_end_hook([this] { stop_background(); });
  if (config_.threaded) {
    background_ = std::thread([this] { background_loop(); });
  }
}

SampledLruPolicy::~SampledLruPolicy() { stop_background(); }

void SampledLruPolicy::stop_background() {
  if (!background_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  background_.join();
}

Nanoseconds SampledLruPolicy::on_access(PageId page, AccessType type) {
  ++accesses_;
  // Virtual time: the "background" migrator runs at access-count
  // boundaries, before the access is served — deterministic for any
  // worker count because it never depends on wall-clock interleaving.
  if (!config_.threaded && accesses_ % config_.drain_period == 0) {
    drain_virtual();
  }
  Nanoseconds latency;
  if (config_.threaded) {
    const std::lock_guard<std::recursive_mutex> lock(mu_);
    latency = serve(page, type);
    if (audit_hook_) audit_hook_(*this, page, type);
    accesses_shared_.store(accesses_, std::memory_order_release);
  } else {
    latency = serve(page, type);
    if (audit_hook_) audit_hook_(*this, page, type);
  }
  return latency;
}

Nanoseconds SampledLruPolicy::serve(PageId page, AccessType type) {
  // Demand handling only — hits never reorder the FIFO queues (a sampling
  // OS does not see per-access recency), migrations never happen inline.
  if (const auto hit = vmm_.access_if_resident(page, type)) {
    return hit->latency;
  }
  Tier dest;
  if (vmm_.has_free_frame(Tier::kDram)) {
    dest = Tier::kDram;
  } else if (vmm_.has_free_frame(Tier::kNvm)) {
    dest = Tier::kNvm;
  } else {
    // Memory full: evict the oldest NVM-resident page in fault order (the
    // DRAM queue serves when the config has no NVM frames at all).
    const bool from_nvm = !nvm_queue_.empty();
    TierQueue& q = from_nvm ? nvm_queue_ : dram_queue_;
    dest = from_nvm ? Tier::kNvm : Tier::kDram;
    const std::optional<PageId> victim = q.victim();
    HYMEM_CHECK_MSG(victim.has_value(), "full memory but no victim");
    q.erase(*victim);
    vmm_.evict(*victim);
  }
  const Nanoseconds latency = vmm_.fault_in(page, dest);
  queue_mut(dest).insert(page);
  if (type == AccessType::kWrite) vmm_.touch_dirty(page);
  return latency;
}

void SampledLruPolicy::drain_virtual() {
  ++drains_;
  const std::uint64_t budget = config_.migration_budget;
  std::uint64_t ops = 0;
  // Demotions first: they free DRAM frames, so the promotions that follow
  // land in free frames instead of forcing swaps.
  while (budget == 0 || ops < budget) {
    const std::optional<PageId> page = cold_ring_.pop();
    if (!page) break;
    ops += apply_demotion(*page);
  }
  while (budget == 0 || ops < budget) {
    const std::optional<PageId> page = hot_ring_.pop();
    if (!page) break;
    ops += apply_promotion(*page);
  }
  last_drain_ops_ = ops;
}

std::uint64_t SampledLruPolicy::apply_promotion(PageId page) {
  // Candidates age in the ring; the page may have been evicted or already
  // promoted by the time the migrator gets to it.
  if (vmm_.tier_of(page) != Tier::kNvm) {
    ++stale_candidates_;
    return 0;
  }
  if (vmm_.has_free_frame(Tier::kDram)) {
    vmm_.migrate(page, Tier::kDram);
    nvm_queue_.erase(page);
    dram_queue_.insert(page);
    ++promotions_;
    ++migration_copies_;
    return 1;
  }
  if (vmm_.frames(Tier::kDram) == 0) {
    ++stale_candidates_;
    return 0;
  }
  // DRAM full: swap with the oldest DRAM-resident page. One candidate,
  // two copies — the forced demotion rides the promotion's budget slot.
  const std::optional<PageId> victim = dram_queue_.victim();
  HYMEM_CHECK_MSG(victim.has_value(), "full DRAM but empty queue");
  vmm_.swap(page, *victim);
  nvm_queue_.erase(page);
  dram_queue_.erase(*victim);
  dram_queue_.insert(page);
  nvm_queue_.insert(*victim);
  ++promotions_;
  ++demotions_;
  migration_copies_ += 2;
  return 1;
}

std::uint64_t SampledLruPolicy::apply_demotion(PageId page) {
  if (vmm_.tier_of(page) != Tier::kDram) {
    ++stale_candidates_;
    return 0;
  }
  if (vmm_.frames(Tier::kNvm) == 0) {
    ++stale_candidates_;
    return 0;
  }
  if (!vmm_.has_free_frame(Tier::kNvm)) {
    // NVM also full: push its oldest page to disk so the cold DRAM page
    // can land. Background demotion buys DRAM headroom for future
    // promotions — the HeMem pattern.
    const std::optional<PageId> victim = nvm_queue_.victim();
    HYMEM_CHECK_MSG(victim.has_value(), "full NVM but empty queue");
    nvm_queue_.erase(*victim);
    vmm_.evict(*victim);
  }
  vmm_.migrate(page, Tier::kNvm);
  dram_queue_.erase(page);
  nvm_queue_.insert(page);
  ++demotions_;
  ++migration_copies_;
  return 1;
}

void SampledLruPolicy::background_loop() {
  const std::uint64_t budget = config_.migration_budget;
  std::uint64_t seen = 0;    // accesses already converted to tokens
  std::uint64_t credit = 0;  // access remainder below one drain period
  std::uint64_t tokens = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    // Token bucket in access time: `budget` tokens accrue per
    // `drain_period` served accesses, capped at one period's worth so an
    // idle migrator cannot burst beyond the configured rate.
    const std::uint64_t now = accesses_shared_.load(std::memory_order_acquire);
    credit += now - seen;
    seen = now;
    if (budget > 0) {
      tokens = std::min(budget,
                        tokens + credit / config_.drain_period * budget);
      credit %= config_.drain_period;
    }
    bool applied = false;
    {
      const std::lock_guard<std::recursive_mutex> lock(mu_);
      while (budget == 0 || tokens > 0) {
        std::optional<PageId> page = cold_ring_.pop();
        const bool cold = page.has_value();
        if (!cold) page = hot_ring_.pop();
        if (!page) break;
        const std::uint64_t ops =
            cold ? apply_demotion(*page) : apply_promotion(*page);
        if (ops > 0) {
          applied = true;
          if (budget > 0) tokens -= ops;
        }
      }
      if (applied) ++drains_;
    }
    if (!applied) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

void SampledLruPolicy::reset_stats() {
  tap_.reset_stats();
  std::unique_lock<std::recursive_mutex> lock;
  if (config_.threaded) lock = std::unique_lock<std::recursive_mutex>(mu_);
  promotions_ = 0;
  demotions_ = 0;
  stale_candidates_ = 0;
  migration_copies_ = 0;
  drains_ = 0;
  last_drain_ops_ = 0;
}

obs::SampledStats SampledLruPolicy::sampled_stats() const {
  obs::SampledStats s;
  s.samples = tap_.samples();
  s.sample_drops = tap_.drops();
  s.coolings = tap_.coolings();
  s.hot_ring_hwm = tap_.hot_ring_hwm();
  s.cold_ring_hwm = tap_.cold_ring_hwm();
  std::unique_lock<std::recursive_mutex> lock;
  if (config_.threaded) lock = std::unique_lock<std::recursive_mutex>(mu_);
  s.promotions = promotions_;
  s.demotions = demotions_;
  s.stale_candidates = stale_candidates_;
  s.migration_copies = migration_copies_;
  s.drains = drains_;
  s.backlog = hot_ring_.size() + cold_ring_.size();
  return s;
}

}  // namespace hymem::sample
