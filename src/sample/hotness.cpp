#include "sample/hotness.hpp"

#include "util/check.hpp"

namespace hymem::sample {

HotnessBoard::HotnessBoard(std::uint64_t hot_threshold,
                           std::uint64_t cold_threshold)
    : hot_threshold_(hot_threshold), cold_threshold_(cold_threshold) {
  HYMEM_CHECK_MSG(hot_threshold > 0, "hot threshold must be positive");
  HYMEM_CHECK_MSG(cold_threshold <= hot_threshold,
                  "cold threshold must not exceed hot threshold");
}

bool HotnessBoard::record(PageId page) {
  std::uint64_t* count = counts_.try_emplace(page).first;
  const std::uint64_t before = *count;
  ++*count;
  return before < hot_threshold_ && *count >= hot_threshold_;
}

}  // namespace hymem::sample
