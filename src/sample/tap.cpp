#include "sample/tap.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hymem::sample {

SamplingTap::SamplingTap(const SampleConfig& config, const os::Vmm& vmm,
                         util::SpscRing<PageId>& hot_ring,
                         util::SpscRing<PageId>& cold_ring,
                         std::recursive_mutex* mu)
    : config_(config),
      vmm_(vmm),
      hot_ring_(hot_ring),
      cold_ring_(cold_ring),
      mu_(mu),
      board_(config.hot_threshold, config.cold_threshold),
      countdown_(config.sample_period) {
  HYMEM_CHECK_MSG(config.sample_period > 0, "sample period must be positive");
  HYMEM_CHECK_MSG(config.cooling_period > 0, "cooling period must be positive");
}

void SamplingTap::on_access(PageId page, AccessType /*type*/,
                            Nanoseconds /*latency*/) {
  if (--countdown_ > 0) return;
  countdown_ = config_.sample_period;
  sample(page);
}

void SamplingTap::sample(PageId page) {
  ++samples_;
  const bool crossed_hot = board_.record(page);
  const bool cooling_due = samples_ % config_.cooling_period == 0;

  // Residency reads race the background migrator in threaded mode; the
  // virtual-time mode passes no mutex and pays nothing here.
  std::unique_lock<std::recursive_mutex> lock;
  if (mu_ != nullptr) lock = std::unique_lock<std::recursive_mutex>(*mu_);

  if (crossed_hot && vmm_.tier_of(page) == Tier::kNvm) {
    if (hot_ring_.push(page)) {
      hot_hwm_ = std::max<std::uint64_t>(hot_hwm_, hot_ring_.size());
    } else {
      ++hot_drops_;
    }
  }

  if (cooling_due) {
    ++coolings_;
    board_.cool([this](PageId cooled) {
      if (vmm_.tier_of(cooled) != Tier::kDram) return;
      if (cold_ring_.push(cooled)) {
        cold_hwm_ = std::max<std::uint64_t>(cold_hwm_, cold_ring_.size());
      } else {
        ++cold_drops_;
      }
    });
  }
}

}  // namespace hymem::sample
