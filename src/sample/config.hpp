// Tunables of the sampled-hotness subsystem.
//
// Three of these are the frontier axes bench_sampled_frontier sweeps:
// `sample_period` (how much of the access stream the OS actually sees),
// `ring_capacity` (how much staging memory the sampling channel gets), and
// `migration_budget` (how much migration bandwidth the background migrator
// may spend). The rest shape the hotness estimator itself, mirroring the
// knobs of HeMem-style PEBS managers (hot threshold, periodic cooling).
#pragma once

#include <cstdint>

namespace hymem::sample {

/// Configuration of SampledLruPolicy and its tap/migrator.
struct SampleConfig {
  /// Every Nth completed access is sampled (PEBS-style period). 1 = observe
  /// everything (the omniscient limit, useful for differential checks).
  std::uint64_t sample_period = 16;

  /// Capacity of each SPSC ring (hot candidates, cold candidates), rounded
  /// up to a power of two. A full ring drops the candidate and counts it.
  std::uint64_t ring_capacity = 1024;

  /// A page whose sampled-access counter reaches this value while
  /// NVM-resident becomes a promotion candidate (pushed on the upward
  /// crossing only, so a steady-hot page enters the ring once per heat-up).
  std::uint64_t hot_threshold = 4;

  /// After a cooling pass, a DRAM-resident page whose counter fell below
  /// this value becomes a demotion candidate.
  std::uint64_t cold_threshold = 1;

  /// Every this-many samples, every hotness counter is halved (HeMem's
  /// periodic cooling) and zeroed entries are pruned from the table.
  std::uint64_t cooling_period = 512;

  /// Virtual-time mode: the migrator drains the rings when the policy's
  /// access count crosses a multiple of this period. Threaded mode: the
  /// token-bucket refill window for `migration_budget`.
  std::uint64_t drain_period = 1024;

  /// Max candidates applied per drain period (a promotion that forces a
  /// swap-demotion counts once; the copies are tracked separately).
  /// 0 = unlimited.
  std::uint64_t migration_budget = 64;

  /// false (default): deterministic virtual-time mode — migrations apply at
  /// access-count boundaries on the replaying thread, byte-identical for
  /// any worker count. true: a real background thread drains the rings
  /// (exercised under TSan; timing-dependent, not for sweeps).
  bool threaded = false;
};

}  // namespace hymem::sample
