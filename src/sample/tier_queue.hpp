// Per-tier residency queue of the sampled policy: FIFO in fault order.
//
// Deliberately *not* an LRU. A sampling OS sees page faults for free but
// does not see per-access recency (that is exactly the information the tap
// only samples), so within a tier the only ordering available at zero cost
// is insertion order; cross-tier movement is driven by sampled hotness.
// Structurally this is DramLruQueue minus the recency splice and the
// promotion scoring: slab-pooled nodes, intrusive list, flat index.
#pragma once

#include <cstddef>
#include <optional>

#include "util/check.hpp"
#include "util/flat_page_map.hpp"
#include "util/intrusive_list.hpp"
#include "util/slab_pool.hpp"
#include "util/types.hpp"

namespace hymem::sample {

/// FIFO membership queue over one tier's resident pages. No per-operation
/// allocation once warmed to `capacity_hint`.
class TierQueue {
 public:
  explicit TierQueue(std::size_t capacity_hint)
      : pool_(capacity_hint > 0 ? capacity_hint : 1) {
    index_.reserve(capacity_hint);
  }

  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }
  bool contains(PageId page) const { return index_.contains(page); }

  /// Starts tracking `page` (must be absent). Newest pages sit at the front.
  void insert(PageId page) {
    const auto [slot, inserted] = index_.try_emplace(page);
    HYMEM_CHECK_MSG(inserted, "insert of tracked page");
    Node* node = pool_.allocate();
    node->page = page;
    *slot = node;
    list_.push_front(*node);
  }

  /// The oldest tracked page (FIFO victim); nullopt iff empty.
  std::optional<PageId> victim() const {
    const Node* back = list_.back();
    if (back == nullptr) return std::nullopt;
    return back->page;
  }

  /// Stops tracking `page` (must be present).
  void erase(PageId page) {
    const std::optional<Node*> found = index_.take(page);
    HYMEM_CHECK_MSG(found.has_value(), "erase of untracked page");
    list_.erase(**found);
    pool_.release(*found);
  }

  /// Newest-to-oldest traversal (invariant checking).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    list_.for_each([&fn](const Node& n) { fn(n.page); });
  }

 private:
  struct Node {
    PageId page = kInvalidPage;
    ListHook hook;
  };

  IntrusiveList<Node, &Node::hook> list_;  // front = newest fault
  util::SlabPool<Node> pool_;
  util::FlatPageMap<Node*> index_;
};

}  // namespace hymem::sample
