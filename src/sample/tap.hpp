// The sampling tap: the producer half of the sampled-hotness subsystem.
//
// Rides the obs::RunObserver seam (the engine's per-access event tap) and
// models a PEBS-style sampler: of the access stream it sees, every Nth
// access is "sampled" — counted on the HotnessBoard — and the rest are
// invisible, exactly the information loss a real sampling OS pays. Upward
// hot-threshold crossings of NVM-resident pages enter the hot ring;
// cooling passes (every cooling_period samples) push DRAM-resident
// downward crossings into the cold ring. Full rings drop the candidate and
// count the drop — samples are droppable by design.
//
// This is the sanctioned RunObserver carve-out (see obs/tap.hpp): the tap
// mutates only its own sampling state (board, rings, counters), never the
// placement the policy is executing. In threaded mode it takes the
// policy's mutex around VMM residency reads, because the background
// migrator mutates placement concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

#include "obs/sampled_stats.hpp"
#include "obs/tap.hpp"
#include "os/vmm.hpp"
#include "sample/config.hpp"
#include "sample/hotness.hpp"
#include "util/spsc_ring.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace hymem::sample {

/// Per-run sampling tap. Single producer: lives on the thread replaying
/// accesses (the engine thread), pushing candidates into rings it does not
/// own — the policy owns them and is (or spawns) the consumer.
class SamplingTap final : public obs::RunObserver {
 public:
  /// `mu` is the policy's serving mutex in threaded mode (taken around VMM
  /// reads so residency checks don't race the migrator); nullptr in
  /// deterministic virtual-time mode.
  SamplingTap(const SampleConfig& config, const os::Vmm& vmm,
              util::SpscRing<PageId>& hot_ring,
              util::SpscRing<PageId>& cold_ring,
              std::recursive_mutex* mu = nullptr);

  void on_access(PageId page, AccessType type, Nanoseconds latency) override;

  /// The engine announces the end of the measured pass here, before it
  /// reads the VMM ledgers for the run's event counts. The policy hooks
  /// this to join its background migrator, so those final reads (and the
  /// epoch sampler's last flush, which the TeeObserver orders after the
  /// tap) happen-after the last background mutation.
  void on_run_end() override {
    if (run_end_hook_) run_end_hook_();
  }
  void set_run_end_hook(std::function<void()> hook) {
    run_end_hook_ = std::move(hook);
  }

  /// Tap-side counters (the migrator-side ones live in the policy).
  std::uint64_t samples() const { return samples_; }
  std::uint64_t drops() const { return hot_drops_ + cold_drops_; }
  std::uint64_t coolings() const { return coolings_; }
  std::uint64_t hot_ring_hwm() const { return hot_hwm_; }
  std::uint64_t cold_ring_hwm() const { return cold_hwm_; }

  const HotnessBoard& board() const { return board_; }

  /// Zeroes the tap counters without touching the board or the rings (the
  /// learned sampling state *is* the steady state a warmup pass builds).
  /// Restarts the cooling phase. Producer-thread only.
  void reset_stats() {
    samples_ = hot_drops_ = cold_drops_ = coolings_ = 0;
    hot_hwm_ = cold_hwm_ = 0;
  }

 private:
  void sample(PageId page);

  SampleConfig config_;
  const os::Vmm& vmm_;
  util::SpscRing<PageId>& hot_ring_;
  util::SpscRing<PageId>& cold_ring_;
  std::recursive_mutex* mu_;
  std::function<void()> run_end_hook_;
  HotnessBoard board_;

  std::uint64_t countdown_;  // accesses until the next sample
  std::uint64_t samples_ = 0;
  std::uint64_t hot_drops_ = 0;
  std::uint64_t cold_drops_ = 0;
  std::uint64_t coolings_ = 0;
  std::uint64_t hot_hwm_ = 0;
  std::uint64_t cold_hwm_ = 0;
};

}  // namespace hymem::sample
