// sampled-lru: hybrid placement driven by sampled hotness and an
// asynchronous bounded-rate migrator — the deployable counterpart to the
// paper's omniscient two-LRU scheme.
//
// Serving path (every access): pure demand handling. Hits are served where
// the page sits; faults fill DRAM first, then NVM, and once memory is full
// evict the oldest NVM-resident page (FIFO fault order — the only ordering
// a sampling OS gets for free, see tier_queue.hpp). No inline migration.
//
// Placement path (asynchronous): the SamplingTap samples every Nth access
// into per-page hotness counters and emits promotion/demotion candidates
// into SPSC rings; the migrator drains the rings and applies at most
// `migration_budget` candidates per `drain_period` accesses. Two modes:
//
//  * virtual time (default): drains run on the serving thread whenever the
//    access count crosses a drain_period boundary — fully deterministic,
//    byte-identical output for any sweep worker count, used by sweeps and
//    the differential oracle;
//  * threaded: a real background thread consumes the rings under a token
//    bucket, sharing the VMM with the serving path via one mutex — the
//    production shape, exercised under TSan; timing-dependent by nature.
//
// The budget counts applied *candidates* (a promotion that forces a swap
// demotion is one candidate, two page copies), so the rate bound is exact
// and swap pressure cannot livelock the drain loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>

#include "obs/sampled_stats.hpp"
#include "policy/hybrid_policy.hpp"
#include "sample/config.hpp"
#include "sample/tap.hpp"
#include "sample/tier_queue.hpp"
#include "util/spsc_ring.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace hymem::sample {

/// Sampled-hotness hybrid policy with asynchronous background migration.
class SampledLruPolicy final : public policy::HybridPolicy,
                              public obs::SampledStatsSource {
 public:
  SampledLruPolicy(os::Vmm& vmm, const SampleConfig& config);
  ~SampledLruPolicy() override;

  std::string_view name() const override { return "sampled-lru"; }
  Nanoseconds on_access(PageId page, AccessType type) override;

  /// The observer the engine must carry for sampling to happen. Runs wire
  /// it (alone or via obs::TeeObserver); a run without the tap degenerates
  /// to demand-only placement with zero migrations.
  obs::RunObserver& tap() { return tap_; }

  /// Stops the background migrator thread (threaded mode; no-op otherwise).
  /// Idempotent; also called by the destructor and by the tap's run-end
  /// hook when the engine finishes a measured pass. After it returns the
  /// structures are safe to inspect without locking.
  void stop_background();

  /// Runs `fn` holding the serving mutex in threaded mode (a plain call in
  /// virtual-time mode). The seam external VMM readers use — the epoch
  /// sampler's boundary snapshots, the experiment's warmup-end accounting
  /// reset — to stay consistent while the migrator is live. The mutex is
  /// recursive, so `fn` may safely call sampled_stats().
  void quiesced(const std::function<void()>& fn) const {
    if (!config_.threaded) {
      fn();
      return;
    }
    const std::lock_guard<std::recursive_mutex> lock(mu_);
    fn();
  }

  obs::SampledStats sampled_stats() const override;

  /// Zeroes every stat counter (tap + migrator) while keeping the learned
  /// state — hotness counters, ring contents, residency queues. Called
  /// between a warmup pass and the measured pass, mirroring
  /// Vmm::reset_accounting(). Serving-thread only.
  void reset_stats();

  const SampleConfig& config() const { return config_; }

  // --- Introspection for src/check ----------------------------------------
  /// Candidates applied by the most recent virtual-time drain pass (the
  /// rate-budget invariant checks this against migration_budget).
  std::uint64_t last_drain_ops() const { return last_drain_ops_; }
  const TierQueue& queue(Tier tier) const {
    return tier == Tier::kDram ? dram_queue_ : nvm_queue_;
  }
  const util::SpscRing<PageId>& hot_ring() const { return hot_ring_; }
  const util::SpscRing<PageId>& cold_ring() const { return cold_ring_; }
  /// Tap-side internals (hotness board, tap counters). Read-only.
  const SamplingTap& sampling_tap() const { return tap_; }

  /// Called after every completed access (post-drain, post-serve), same
  /// contract as TwoLruMigrationPolicy::AuditHook: read-only introspection.
  /// In threaded mode the hook runs under the serving mutex and therefore
  /// must not call sampled_stats() (which takes it).
  using AuditHook = std::function<void(const SampledLruPolicy&, PageId,
                                       AccessType)>;
  void set_audit_hook(AuditHook hook) { audit_hook_ = std::move(hook); }

 private:
  Nanoseconds serve(PageId page, AccessType type);
  void drain_virtual();
  /// Applies one candidate; returns 1 if it consumed budget, 0 if stale.
  std::uint64_t apply_promotion(PageId page);
  std::uint64_t apply_demotion(PageId page);
  TierQueue& queue_mut(Tier tier) {
    return tier == Tier::kDram ? dram_queue_ : nvm_queue_;
  }
  void background_loop();

  SampleConfig config_;
  util::SpscRing<PageId> hot_ring_;
  util::SpscRing<PageId> cold_ring_;
  SamplingTap tap_;  // constructed after the rings it feeds
  TierQueue dram_queue_;
  TierQueue nvm_queue_;

  std::uint64_t accesses_ = 0;
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t stale_candidates_ = 0;
  std::uint64_t migration_copies_ = 0;
  std::uint64_t drains_ = 0;
  std::uint64_t last_drain_ops_ = 0;

  AuditHook audit_hook_;

  // Threaded mode only. mu_ guards the VMM, the tier queues and the
  // migrator counters; the rings are the lock-free channel (producer: tap
  // on the serving thread, consumer: the background thread). Recursive so
  // the quiesced() seam can nest over readers that lock on their own
  // (sampled_stats(), the tap's residency checks).
  mutable std::recursive_mutex mu_;
  std::thread background_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> accesses_shared_{0};
};

}  // namespace hymem::sample
