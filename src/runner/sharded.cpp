#include "runner/sharded.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/migration_scheme.hpp"
#include "obs/epoch.hpp"
#include "runner/thread_pool.hpp"
#include "sim/engine.hpp"
#include "sim/policy_factory.hpp"
#include "synth/generator.hpp"
#include "trace/block_source.hpp"
#include "trace/trace_stats.hpp"
#include "util/budget.hpp"
#include "util/check.hpp"
#include "util/flat_page_map.hpp"

namespace hymem::runner {

namespace {

/// Shard owning a page: a pure function of the page ID, so the partition
/// never depends on trace order or scheduling.
unsigned shard_of(PageId page, unsigned shards) {
  return static_cast<unsigned>(util::hash_page_id(page) % shards);
}

os::VmmConfig shard_vmm_config(std::uint64_t dram_frames,
                               std::uint64_t nvm_frames,
                               const sim::ExperimentConfig& config) {
  os::VmmConfig vmm_config;
  vmm_config.dram_frames = dram_frames;
  vmm_config.nvm_frames = nvm_frames;
  vmm_config.page_size = config.page_size;
  vmm_config.access_granularity = config.access_granularity;
  vmm_config.dram = config.dram;
  vmm_config.nvm = config.nvm;
  vmm_config.disk = config.disk;
  vmm_config.transfer_mode = config.transfer_mode;
  vmm_config.wear_leveling = config.wear_leveling;
  return vmm_config;
}

/// Merges shard results in shard-index order (the caller iterates 0..K-1):
/// counters sum, latencies sum in that fixed order, timelines concatenate.
void merge_into(sim::RunResult& merged, const sim::RunResult& shard) {
  merged.accesses += shard.accesses;
  merged.visible_latency_ns += shard.visible_latency_ns;
  auto& c = merged.counts;
  const auto& s = shard.counts;
  c.accesses += s.accesses;
  c.dram_read_hits += s.dram_read_hits;
  c.dram_write_hits += s.dram_write_hits;
  c.nvm_read_hits += s.nvm_read_hits;
  c.nvm_write_hits += s.nvm_write_hits;
  c.page_faults += s.page_faults;
  c.fills_to_dram += s.fills_to_dram;
  c.fills_to_nvm += s.fills_to_nvm;
  c.migrations_to_dram += s.migrations_to_dram;
  c.migrations_to_nvm += s.migrations_to_nvm;
  c.dirty_evictions += s.dirty_evictions;
  c.page_factor = s.page_factor;  // Config-derived; identical across shards.
  merged.params.dram_bytes += shard.params.dram_bytes;
  merged.params.nvm_bytes += shard.params.nvm_bytes;
  merged.timeline.epochs.insert(merged.timeline.epochs.end(),
                                shard.timeline.epochs.begin(),
                                shard.timeline.epochs.end());
}

}  // namespace

sim::RunResult run_sharded_experiment(const trace::Trace& warmup,
                                      const trace::Trace& measured,
                                      double duration_s,
                                      const sim::ExperimentConfig& config) {
  const unsigned shards = config.shards;
  if (shards < 2) {
    throw std::invalid_argument(
        "partitioned sharding needs --shards >= 2 (use the serial or "
        "exact-shard engine otherwise)");
  }
  if (!sim::is_shardable(config.policy)) {
    sim::throw_unshardable_policy("partitioned sharding", config.policy);
  }
  // Partition both traces by page, preserving order within each shard.
  std::vector<trace::Trace> shard_warmup(shards);
  std::vector<trace::Trace> shard_measured(shards);
  std::vector<std::uint64_t> shard_footprint(shards, 0);
  {
    util::FlatPageMap<char> seen;
    for (const auto& access : warmup.accesses()) {
      const PageId page = trace::page_of(access.addr, config.page_size);
      const unsigned s = shard_of(page, shards);
      shard_warmup[s].append(access);
      if (seen.try_emplace(page).second) ++shard_footprint[s];
    }
  }
  for (const auto& access : measured.accesses()) {
    const PageId page = trace::page_of(access.addr, config.page_size);
    shard_measured[shard_of(page, shards)].append(access);
  }
  for (unsigned s = 0; s < shards; ++s) {
    shard_warmup[s].set_name(warmup.name());
    shard_measured[s].set_name(measured.name());
  }
  // Global Section V.A sizing, split proportionally to shard footprints.
  std::uint64_t total_footprint = 0;
  for (const std::uint64_t f : shard_footprint) total_footprint += f;
  const sim::MemorySizing sizing = sim::size_memory(total_footprint, config);
  const std::vector<std::uint64_t> dram_split =
      util::split_budget(sizing.dram_frames, shard_footprint);
  const std::vector<std::uint64_t> nvm_split =
      util::split_budget(sizing.nvm_frames, shard_footprint);

  // Fan the shards out; each task owns its slot, errors are captured and
  // rethrown in shard order so failures are deterministic too.
  std::vector<sim::RunResult> results(shards);
  // char, not bool: each worker writes only its own slot, and
  // std::vector<bool> would pack neighbouring slots into one byte.
  std::vector<char> ran(shards, 0);
  std::vector<std::exception_ptr> errors(shards);
  const auto run_shard = [&](unsigned s) {
    if (shard_measured[s].empty()) return;  // No pages map here.
    os::Vmm vmm(shard_vmm_config(dram_split[s], nvm_split[s], config));
    const auto policy =
        sim::make_policy(config.policy, vmm, config.migration, config.sample);
    const std::size_t chunk = static_cast<std::size_t>(config.chunk_accesses);
    if (!shard_warmup[s].empty()) {
      trace::TraceBlockSource warm(shard_warmup[s], config.page_size, chunk);
      const unsigned passes = std::max(1u, config.warmup_passes);
      for (unsigned pass = 0; pass < passes; ++pass) {
        if (pass > 0) warm.rewind();
        while (const trace::DecodedBlock* block = warm.next()) {
          policy->on_block(
              {block->pages, block->types, block->hashes, block->size});
        }
      }
      vmm.reset_accounting();
    }
    trace::TraceBlockSource source(shard_measured[s], config.page_size, chunk);
    if (config.timeline_epoch == 0) {
      results[s] = sim::run_blocks(*policy, source, duration_s);
    } else {
      const auto* scheme =
          dynamic_cast<const core::TwoLruMigrationPolicy*>(policy.get());
      obs::EpochSampler sampler(config.timeline_epoch, vmm, scheme,
                                duration_s);
      results[s] = sim::run_blocks(*policy, source, duration_s,
                                   /*warmup_passes=*/0, &sampler);
      results[s].timeline = sampler.take_timeline();
    }
    ran[s] = 1;
  };
  {
    ThreadPool pool(std::min(shards, ThreadPool::default_threads()));
    for (unsigned s = 0; s < shards; ++s) {
      pool.submit([&, s] {
        try {
          run_shard(s);
        } catch (...) {
          errors[s] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (unsigned s = 0; s < shards; ++s) {
    if (errors[s] != nullptr) std::rethrow_exception(errors[s]);
  }

  // Deterministic merge in shard-index order.
  sim::RunResult merged;
  merged.workload = measured.name();
  merged.duration_s = duration_s;
  merged.timeline.epoch_length = config.timeline_epoch;
  bool seeded = false;
  for (unsigned s = 0; s < shards; ++s) {
    if (!ran[s]) continue;
    if (!seeded) {
      merged.policy = results[s].policy;
      merged.params = results[s].params;
      merged.params.dram_bytes = 0;
      merged.params.nvm_bytes = 0;
      merged.counts.page_factor = results[s].counts.page_factor;
      seeded = true;
    }
    merge_into(merged, results[s]);
  }
  if (!seeded) {
    throw std::invalid_argument("empty trace: \"" + measured.name() +
                                "\" has no accesses to replay");
  }
  return merged;
}

sim::RunResult run_sharded_workload(const synth::WorkloadProfile& profile,
                                    std::uint64_t scale,
                                    const sim::ExperimentConfig& config,
                                    std::uint64_t seed) {
  const synth::WorkloadProfile scaled = profile.scaled(scale);
  synth::GeneratorOptions options;
  options.page_size = config.page_size;
  options.line_size = config.access_granularity;
  options.seed = seed;
  const trace::Trace warmup = synth::generate(scaled, options);
  synth::GeneratorOptions body_options = options;
  body_options.ensure_full_footprint = false;
  body_options.seed = seed + 1;
  const trace::Trace measured = synth::generate(scaled, body_options);
  return run_sharded_experiment(warmup, measured, scaled.roi_seconds, config);
}

sim::RunResult run_workload_dispatch(const synth::WorkloadProfile& profile,
                                     std::uint64_t scale,
                                     const sim::ExperimentConfig& config,
                                     std::uint64_t seed) {
  if (config.shards > 1 && config.shard_mode == sim::ShardMode::kPartitioned) {
    return run_sharded_workload(profile, scale, config, seed);
  }
  return sim::run_workload(profile, scale, config, seed);
}

}  // namespace hymem::runner
