#include "runner/progress.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

namespace hymem::runner {

ProgressTracker::ProgressTracker(std::uint64_t total, Callback on_update)
    : start_(std::chrono::steady_clock::now()),
      on_update_(std::move(on_update)),
      total_(total) {}

void ProgressTracker::job_done(bool ok) {
  ProgressSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    if (!ok) ++failed_;
    snap.completed = completed_;
    snap.failed = failed_;
    snap.total = total_;
  }
  snap.elapsed_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  if (snap.completed > 0 && snap.completed < snap.total) {
    snap.eta_s = snap.elapsed_s / static_cast<double>(snap.completed) *
                 static_cast<double>(snap.total - snap.completed);
  }
  if (on_update_) on_update_(snap);
}

ProgressSnapshot ProgressTracker::snapshot() const {
  ProgressSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.completed = completed_;
    snap.failed = failed_;
    snap.total = total_;
  }
  snap.elapsed_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  if (snap.completed > 0 && snap.completed < snap.total) {
    snap.eta_s = snap.elapsed_s / static_cast<double>(snap.completed) *
                 static_cast<double>(snap.total - snap.completed);
  }
  return snap;
}

std::string format_progress(const ProgressSnapshot& snapshot) {
  // PRIu64 matches std::uint64_t on every ABI; %llu + casts only happened
  // to line up where unsigned long long is 64-bit.
  char buf[160];
  if (snapshot.completed == 0) {
    // No completion yet means no observed rate — printing "eta 0.0s" would
    // claim the sweep is done when it has not started.
    std::snprintf(buf, sizeof buf,
                  "%" PRIu64 "/%" PRIu64 " (%.1f%%) elapsed %.1fs, %" PRIu64
                  " failed",
                  snapshot.completed, snapshot.total,
                  100.0 * snapshot.fraction(), snapshot.elapsed_s,
                  snapshot.failed);
  } else {
    std::snprintf(buf, sizeof buf,
                  "%" PRIu64 "/%" PRIu64
                  " (%.1f%%) elapsed %.1fs eta %.1fs, %" PRIu64 " failed",
                  snapshot.completed, snapshot.total,
                  100.0 * snapshot.fraction(), snapshot.elapsed_s,
                  snapshot.eta_s, snapshot.failed);
  }
  return buf;
}

ProgressTracker::Callback stderr_progress() {
  return [](const ProgressSnapshot& snapshot) {
    // \r keeps one in-place status line on a TTY; a log file just records
    // the last state per line-buffer flush. The final completion adds the
    // newline so later stderr output starts clean.
    std::fprintf(stderr, "\r%s%s", format_progress(snapshot).c_str(),
                 snapshot.completed == snapshot.total ? "\n" : "");
    std::fflush(stderr);
  };
}

}  // namespace hymem::runner
