#include "runner/prescreen.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <tuple>
#include <utility>

#include "sim/experiment.hpp"

namespace hymem::runner {

PrescreenResults run_prescreened_sweep(const SweepSpec& spec,
                                       const PrescreenOptions& options) {
  auto grid = expand_grid(spec);
  PrescreenResults out;
  out.sweep.jobs.resize(grid.size());
  out.screen.resize(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    out.sweep.jobs[i].job = std::move(grid[i]);
    out.screen[i].index = i;
  }

  // One characterization per distinct (workload, seed, page size): the
  // reuse-distance profile does not depend on the policy or sizing knobs,
  // so a whole policy/variant grid shares one O(n log n) pass.
  std::map<std::tuple<std::string, std::uint64_t, std::uint64_t>,
           sim::AnalyticWorkload>
      characterized;
  const auto characterize = [&](const SweepJob& job)
      -> const sim::AnalyticWorkload& {
    const auto key = std::make_tuple(job.workload.name, job.seed,
                                     job.config.page_size);
    auto it = characterized.find(key);
    if (it == characterized.end()) {
      it = characterized
               .emplace(key, sim::characterize_workload(
                                 job.workload, spec.scale, job.config,
                                 job.seed))
               .first;
    }
    return it->second;
  };

  // Ranking pass: estimate every supported cell, order by (predicted AMAT,
  // grid index). The tie-break on grid index keeps the selected set a pure
  // function of the spec — independent of worker count or timing.
  std::vector<std::size_t> supported;
  for (std::size_t i = 0; i < out.sweep.jobs.size(); ++i) {
    const SweepJob& job = out.sweep.jobs[i].job;
    ScreenedJob& screen = out.screen[i];
    if (!sim::analytic_supported(job.config)) continue;
    const sim::AnalyticWorkload& workload = characterize(job);
    const auto t0 = std::chrono::steady_clock::now();
    screen.estimate = sim::analytic_estimate(workload, job.config);
    out.analytic_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ++out.analytic_evals;
    screen.analytic = true;
    screen.predicted_amat_ns = screen.estimate.amat.total();
    supported.push_back(i);
  }
  std::sort(supported.begin(), supported.end(),
            [&](std::size_t a, std::size_t b) {
              const double sa = out.screen[a].predicted_amat_ns;
              const double sb = out.screen[b].predicted_amat_ns;
              return sa != sb ? sa < sb : a < b;
            });

  const std::size_t keep =
      options.refine_top == 0
          ? supported.size()
          : std::min(options.refine_top, supported.size());
  for (std::size_t rank = 0; rank < keep; ++rank) {
    out.screen[supported[rank]].selected = true;
  }
  // Unsupported cells have no prediction to stand on: always simulate.
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < out.sweep.jobs.size(); ++i) {
    if (!out.screen[i].analytic) out.screen[i].selected = true;
    if (out.screen[i].selected) {
      selected.push_back(i);
    } else {
      out.sweep.jobs[i].skipped = true;
    }
  }
  out.simulated = selected.size();

  execute_jobs(out.sweep, spec.scale, selected, options.run);
  return out;
}

}  // namespace hymem::runner
