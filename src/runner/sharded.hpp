// Partitioned-shard execution of one experiment (sim::ShardMode::
// kPartitioned): the run's address space is hash-partitioned across K
// independent policy instances, each owning a proportional slice of the
// DRAM/NVM budget, replayed in parallel on the shared thread pool, and
// merged into one RunResult in shard-index order.
//
// Determinism contract: the partition function is a pure function of the
// page ID (hash_page_id(page) % shards), sub-traces preserve trace order,
// every shard owns its VMM/policy, and the merge folds shard results in
// index order 0..K-1 — so output is byte-identical across repeated runs and
// worker counts *for a fixed K*. Unlike ShardMode::kExact, results are NOT
// identical across different K: each shard's LRU only sees its own pages
// and budget slice, so shard-local recency is an approximation knob of the
// global policy (see DESIGN.md §12).
//
// This lives in runner/ (not sim/) because it owns the fan-out: the
// dependency order puts the thread pool above the engine.
#pragma once

#include <cstdint>

#include "sim/experiment.hpp"
#include "synth/workload_profile.hpp"
#include "trace/trace.hpp"

namespace hymem::runner {

/// Two-trace partitioned run: memory is sized from `warmup`'s footprint,
/// each shard warms on its slice of `warmup`, then replays its slice of
/// `measured` with counting on. Requires config.shards > 1 and a
/// non-sampled policy; throws std::invalid_argument otherwise.
sim::RunResult run_sharded_experiment(const trace::Trace& warmup,
                                      const trace::Trace& measured,
                                      double duration_s,
                                      const sim::ExperimentConfig& config);

/// Generates the workload's synthetic traces (like sim::run_workload) and
/// runs the partitioned experiment on them.
sim::RunResult run_sharded_workload(const synth::WorkloadProfile& profile,
                                    std::uint64_t scale,
                                    const sim::ExperimentConfig& config,
                                    std::uint64_t seed = 42);

/// Routing helper for the sweep runner and harnesses: dispatches to
/// run_sharded_workload when the config asks for partitioned shards, and to
/// sim::run_workload (which handles serial, chunked and exact-shard modes
/// internally) otherwise.
sim::RunResult run_workload_dispatch(const synth::WorkloadProfile& profile,
                                     std::uint64_t scale,
                                     const sim::ExperimentConfig& config,
                                     std::uint64_t seed = 42);

}  // namespace hymem::runner
