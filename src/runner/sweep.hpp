// Parallel sweep runner: declarative (workload × policy × config-variant)
// job grids executed across a thread pool, with deterministic per-job
// seeding, per-job fault isolation, and structured (CSV/JSON) export.
//
// Determinism contract: the grid expands in a fixed row-major order
// (workload-major, then policy, then variant); each job's seed is a pure
// function of (base_seed, job index); each job owns its generator and VMM;
// and results land in pre-allocated slots indexed by job. Consequently a
// sweep's exported CSV/JSON is byte-identical for any worker count,
// including the serial (--jobs 1) path.
//
// Fault isolation: a throwing job (bad policy name, config validation, …)
// is captured into its own result slot as an error string; the remaining
// jobs run to completion and the failure summary reports the casualties.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "runner/progress.hpp"
#include "sim/experiment.hpp"
#include "synth/workload_profile.hpp"

namespace hymem::runner {

/// One named ExperimentConfig override (the third grid dimension). The
/// config's `policy` field is overwritten by the grid's policy dimension.
struct ConfigVariant {
  std::string label;  ///< Shows up in exports; "" for the default config.
  sim::ExperimentConfig config;
};

/// How per-job seeds derive from the spec's base_seed.
enum class SeedMode {
  /// seed_i = splitmix64 stream output i of base_seed: every job draws an
  /// independent trace (statistical sweeps; the ISSUE's default).
  kPerJob,
  /// Every job uses base_seed verbatim: all policies replay the *same*
  /// trace per workload — the paper's fair-comparison setup, and exactly
  /// what the serial harnesses did before the runner existed.
  kShared,
};

/// Declarative job grid. Jobs = workloads × policies × variants.
struct SweepSpec {
  std::vector<synth::WorkloadProfile> workloads;
  std::vector<std::string> policies;
  /// Config overrides; empty means one default-constructed variant.
  std::vector<ConfigVariant> variants;
  std::uint64_t scale = 64;       ///< Table III divisor (see bench_common).
  std::uint64_t base_seed = 42;
  SeedMode seed_mode = SeedMode::kShared;
};

/// One expanded grid cell.
struct SweepJob {
  std::size_t index = 0;  ///< Position in grid order (and result order).
  synth::WorkloadProfile workload;
  std::string policy;
  std::string variant;
  sim::ExperimentConfig config;  ///< Variant config with `policy` applied.
  std::uint64_t seed = 0;
};

/// The deterministic per-job seed: output `index` of the splitmix64 stream
/// seeded at `base_seed`. Pure function — independent of execution order.
std::uint64_t job_seed(std::uint64_t base_seed, std::size_t index);

/// Expands the grid in deterministic row-major order
/// (workload-major, then policy, then variant).
std::vector<SweepJob> expand_grid(const SweepSpec& spec);

/// One job's outcome: a RunResult, a captured error, or — under the analytic
/// prescreen — a deliberate skip (ranked out of the refine set, never run).
struct JobResult {
  SweepJob job;
  bool ok = false;
  bool skipped = false;   ///< Prescreened out; not a failure.
  std::string error;      ///< Exception text when !ok && !skipped.
  sim::RunResult result;  ///< Valid only when ok.
  double wall_ms = 0.0;   ///< This job's own wall time.
};

/// Thread-safe-by-construction result store: slots are pre-allocated in
/// grid order and each worker writes only its own slot.
struct SweepResults {
  std::vector<JobResult> jobs;  ///< Grid order, one slot per job.
  double wall_s = 0.0;          ///< Whole-sweep wall time.
  unsigned workers = 1;         ///< Worker threads actually used.

  /// Jobs that ran and failed. Prescreen-skipped jobs are not failures.
  std::size_t failures() const;
  /// Jobs deliberately skipped by the analytic prescreen.
  std::size_t skipped() const;
  /// The successful RunResults in grid order.
  std::vector<sim::RunResult> results() const;

  /// CSV: job identification (workload, policy, variant, seed, status,
  /// error, wall_ms omitted for byte-determinism) followed by the
  /// sim::csv_header() metric columns (blank on failed/skipped jobs).
  /// Status is "ok", "failed" or "skipped".
  void write_csv(std::ostream& out) const;
  /// JSON array of {workload, policy, variant, seed, status[, error]
  /// [, result]} objects; `result` nests sim::write_json's object.
  void write_json(std::ostream& out) const;
  /// Splices every successful job's epoch timeline into one CSV: the job
  /// identity columns (workload, policy, variant, seed) followed by
  /// obs::timeline_csv_header(). Jobs appear in grid order, epochs in run
  /// order, so the output is byte-identical for any worker count. Jobs that
  /// ran without sampling (timeline_epoch == 0) or failed contribute no
  /// rows. Returns the number of epoch rows written.
  std::size_t write_timeline_csv(std::ostream& out) const;
  /// Human-readable failure summary; writes nothing when all jobs passed.
  void write_failures(std::ostream& out) const;
};

struct SweepOptions {
  /// Worker threads; 0 = ThreadPool::default_threads(). 1 runs the jobs
  /// inline on the calling thread (the serial reference path).
  unsigned jobs = 0;
  /// Invoked after every job completion (from worker threads; must be
  /// thread-safe). See stderr_progress().
  ProgressTracker::Callback progress;
};

/// Expands and executes the grid. Never throws for job-level failures.
SweepResults run_sweep(const SweepSpec& spec, const SweepOptions& options = {});

/// The executor behind run_sweep, shared with the analytic prescreen: runs
/// only the jobs whose grid indices appear in `indices` (each at most once;
/// untouched slots keep their prior state). Slots must already carry their
/// SweepJob. Serial when the effective worker count is 1, byte-identical
/// results for any worker count.
void execute_jobs(SweepResults& results, std::uint64_t scale,
                  const std::vector<std::size_t>& indices,
                  const SweepOptions& options);

}  // namespace hymem::runner
