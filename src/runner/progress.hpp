// Thread-safe sweep progress: completed/failed counters plus an ETA derived
// from the observed per-job rate. Reporting goes through a user callback so
// harnesses can route it to stderr (keeping stdout byte-deterministic for
// CSV/JSON capture) or swallow it in tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

namespace hymem::runner {

/// One consistent view of a sweep in flight.
struct ProgressSnapshot {
  std::uint64_t completed = 0;  ///< Jobs finished (ok + failed).
  std::uint64_t failed = 0;     ///< Jobs whose exception was captured.
  std::uint64_t total = 0;
  double elapsed_s = 0.0;
  /// Linear-rate remaining-time estimate; 0 until the first completion.
  double eta_s = 0.0;
  double fraction() const {
    return total ? static_cast<double>(completed) / static_cast<double>(total)
                 : 1.0;
  }
};

/// Counts completions across worker threads and invokes an optional callback
/// (under no lock) after each one.
class ProgressTracker {
 public:
  using Callback = std::function<void(const ProgressSnapshot&)>;

  explicit ProgressTracker(std::uint64_t total, Callback on_update = {});

  /// Records one finished job; `ok=false` also bumps the failure count.
  void job_done(bool ok);

  ProgressSnapshot snapshot() const;

 private:
  std::chrono::steady_clock::time_point start_;
  Callback on_update_;
  mutable std::mutex mutex_;
  std::uint64_t total_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
};

/// "12/96 (12.5%) elapsed 3.1s eta 21.7s, 0 failed" — one line, no \n.
/// The eta field is omitted until the first completion (no observed rate).
std::string format_progress(const ProgressSnapshot& snapshot);

/// Callback that rewrites one stderr status line per completion (\r-style)
/// and emits the terminating newline when the sweep finishes.
ProgressTracker::Callback stderr_progress();

}  // namespace hymem::runner
