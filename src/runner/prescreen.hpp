// Analytic prescreen: rank a sweep grid with the closed-form estimator
// (model/analytic) and dispatch only the most promising cells to full
// simulation — the fast path that makes exhaustive Table III-style config
// searches affordable.
//
// Flow: expand the grid exactly like run_sweep, characterize each distinct
// (workload, seed, page size) once (one O(n log n) reuse-distance pass),
// estimate every analytic-supported cell in-process (thousands of cells per
// second), rank by predicted Eq. 1 AMAT, and simulate the union of
//   * the top `refine_top` supported cells (all of them when refine_top is
//     0 or >= the supported count), and
//   * every unsupported cell (adaptive thresholds, sampled policies, the
//     non-two-LRU hybrids — the estimator's contract in analytic_supported).
// Everything else is marked `skipped` in its result slot: same grid order,
// same CSV/JSON columns, blank metrics.
//
// Determinism contract (CI-gated like run_sweep's): ranking happens
// in-process before any job is dispatched, ordered by (predicted AMAT, grid
// index) — so the selected set, the result slots and every exported byte are
// identical for any --jobs value.
#pragma once

#include <cstddef>
#include <vector>

#include "model/analytic.hpp"
#include "runner/sweep.hpp"

namespace hymem::runner {

/// Per-cell outcome of the analytic ranking pass (grid order).
struct ScreenedJob {
  std::size_t index = 0;    ///< Grid index (mirrors SweepJob::index).
  bool analytic = false;    ///< Estimator supports this cell.
  bool selected = false;    ///< Dispatched to full simulation.
  /// Valid when `analytic`: the prediction and the ranking score.
  model::AnalyticEstimate estimate;
  double predicted_amat_ns = 0.0;
};

struct PrescreenOptions {
  /// Simulate only the best `refine_top` supported cells (plus every
  /// unsupported cell). 0 = simulate everything, i.e. a plain sweep with
  /// the analytic predictions attached.
  std::size_t refine_top = 0;
  /// Executor knobs for the simulation phase (workers, progress).
  SweepOptions run;
};

struct PrescreenResults {
  /// All grid slots: simulated cells carry results, pruned cells are
  /// `skipped`. The CSV/JSON/timeline writers splice exactly as for a full
  /// sweep.
  SweepResults sweep;
  /// The analytic pass, grid order (one entry per grid cell).
  std::vector<ScreenedJob> screen;
  std::size_t analytic_evals = 0;   ///< Estimates computed.
  double analytic_seconds = 0.0;    ///< Wall time of the estimates alone.
  std::size_t simulated = 0;        ///< Cells dispatched to simulation.

  /// Estimates per second over the ranking pass (characterization excluded).
  double analytic_evals_per_second() const {
    return analytic_seconds > 0.0
               ? static_cast<double>(analytic_evals) / analytic_seconds
               : 0.0;
  }
};

/// Expands `spec`, ranks it analytically and simulates the selected subset.
/// Never throws for job-level failures (same contract as run_sweep).
PrescreenResults run_prescreened_sweep(const SweepSpec& spec,
                                       const PrescreenOptions& options = {});

}  // namespace hymem::runner
