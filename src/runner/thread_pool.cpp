#include "runner/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace hymem::runner {

unsigned ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: shutdown is clean, not abortive.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace hymem::runner
