// Fixed-size worker pool with a FIFO work queue and clean shutdown.
//
// The sweep runner fans (policy × workload × config) jobs out across cores;
// this pool is the minimal executor that makes that safe: tasks are plain
// std::function<void()> (the sweep layer owns fault capture), shutdown drains
// the queue before joining, and wait_idle() gives callers a barrier without
// destroying the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hymem::runner {

/// Fixed pool of worker threads consuming a shared FIFO queue.
///
/// Semantics:
///   * submit() after shutdown began throws std::runtime_error.
///   * Tasks must not throw — an escaping exception would terminate the
///     worker (std::terminate). The sweep layer wraps every job in a
///     try/catch and records the failure instead.
///   * The destructor completes all queued tasks, then joins all workers
///     (clean shutdown: nothing submitted is ever silently dropped).
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Wakes one worker.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty AND no worker is mid-task.
  void wait_idle();

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Default worker count: the hardware concurrency, with a floor of 1
  /// (hardware_concurrency() may legally return 0).
  static unsigned default_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< Signals workers: work or stop.
  std::condition_variable idle_cv_;  ///< Signals waiters: maybe idle now.
  std::size_t active_ = 0;           ///< Workers currently running a task.
  bool stop_ = false;
};

}  // namespace hymem::runner
