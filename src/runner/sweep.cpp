#include "runner/sweep.hpp"

#include <algorithm>
#include <chrono>

#include "obs/timeline_io.hpp"
#include "runner/sharded.hpp"
#include "runner/thread_pool.hpp"
#include "sim/results_io.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/random.hpp"

namespace hymem::runner {

std::uint64_t job_seed(std::uint64_t base_seed, std::size_t index) {
  // splitmix64 increments by the golden gamma then mixes, so seeding the
  // state at base_seed + index*gamma yields exactly stream output `index`
  // without walking the stream: O(1), order-free, collision-resistant.
  std::uint64_t state =
      base_seed + static_cast<std::uint64_t>(index) * 0x9e3779b97f4a7c15ULL;
  return splitmix64(state);
}

std::vector<SweepJob> expand_grid(const SweepSpec& spec) {
  const std::vector<ConfigVariant> default_variants(1);
  const auto& variants =
      spec.variants.empty() ? default_variants : spec.variants;
  std::vector<SweepJob> jobs;
  jobs.reserve(spec.workloads.size() * spec.policies.size() * variants.size());
  for (const auto& workload : spec.workloads) {
    for (const auto& policy : spec.policies) {
      for (const auto& variant : variants) {
        SweepJob job;
        job.index = jobs.size();
        job.workload = workload;
        job.policy = policy;
        job.variant = variant.label;
        job.config = variant.config;
        job.config.policy = policy;
        job.seed = spec.seed_mode == SeedMode::kPerJob
                       ? job_seed(spec.base_seed, job.index)
                       : spec.base_seed;
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

std::size_t SweepResults::failures() const {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(), [](const JobResult& j) {
        return !j.ok && !j.skipped;
      }));
}

std::size_t SweepResults::skipped() const {
  return static_cast<std::size_t>(std::count_if(
      jobs.begin(), jobs.end(),
      [](const JobResult& j) { return j.skipped; }));
}

std::vector<sim::RunResult> SweepResults::results() const {
  std::vector<sim::RunResult> out;
  out.reserve(jobs.size());
  for (const auto& job : jobs) {
    if (job.ok) out.push_back(job.result);
  }
  return out;
}

void SweepResults::write_csv(std::ostream& out) const {
  CsvWriter writer(out);
  // Job identification first, then the shared RunResult projection from
  // sim/results_io (minus its leading workload/policy, already present).
  const auto& metric_header = sim::csv_header();
  std::vector<std::string> header = {"workload", "policy", "variant",
                                     "seed",     "status", "error"};
  header.insert(header.end(), metric_header.begin() + 2, metric_header.end());
  writer.write_row(header);
  for (const auto& job : jobs) {
    std::vector<std::string> row = {
        job.job.workload.name,
        job.job.policy,
        job.job.variant,
        std::to_string(job.job.seed),
        job.ok ? "ok" : (job.skipped ? "skipped" : "failed"),
        job.ok || job.skipped ? std::string() : job.error};
    if (job.ok) {
      auto fields = sim::csv_fields(job.result);
      row.insert(row.end(), fields.begin() + 2, fields.end());
    } else {
      row.resize(header.size());
    }
    writer.write_row(row);
  }
}

std::size_t SweepResults::write_timeline_csv(std::ostream& out) const {
  CsvWriter writer(out);
  const auto& epoch_header = obs::timeline_csv_header();
  std::vector<std::string> header = {"workload", "policy", "variant", "seed"};
  header.insert(header.end(), epoch_header.begin(), epoch_header.end());
  writer.write_row(header);
  std::size_t rows = 0;
  for (const auto& job : jobs) {
    if (!job.ok || job.result.timeline.empty()) continue;
    for (const auto& record : job.result.timeline.epochs) {
      std::vector<std::string> row = {job.job.workload.name, job.job.policy,
                                      job.job.variant,
                                      std::to_string(job.job.seed)};
      auto fields = obs::timeline_csv_fields(record);
      row.insert(row.end(), std::make_move_iterator(fields.begin()),
                 std::make_move_iterator(fields.end()));
      writer.write_row(row);
      ++rows;
    }
  }
  return rows;
}

using util::json_escape;

void SweepResults::write_json(std::ostream& out) const {
  out << "[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& job = jobs[i];
    if (i) out << ",";
    out << "\n{\n  \"workload\": \"" << json_escape(job.job.workload.name)
        << "\",\n  \"policy\": \"" << json_escape(job.job.policy)
        << "\",\n  \"variant\": \"" << json_escape(job.job.variant)
        << "\",\n  \"seed\": " << job.job.seed << ",\n  \"status\": \""
        << (job.ok ? "ok" : (job.skipped ? "skipped" : "failed")) << "\"";
    if (job.ok) {
      out << ",\n  \"result\": ";
      sim::write_json(job.result, out);
    } else if (!job.skipped) {
      out << ",\n  \"error\": \"" << json_escape(job.error) << "\"";
    }
    out << "\n}";
  }
  out << "\n]\n";
}

void SweepResults::write_failures(std::ostream& out) const {
  const auto failed = failures();
  if (failed == 0) return;
  out << failed << "/" << jobs.size() << " sweep jobs FAILED:\n";
  for (const auto& job : jobs) {
    if (job.ok || job.skipped) continue;
    out << "  [" << job.job.index << "] " << job.job.workload.name << " / "
        << job.job.policy;
    if (!job.job.variant.empty()) out << " / " << job.job.variant;
    out << ": " << job.error << "\n";
  }
}

void execute_jobs(SweepResults& results, std::uint64_t scale,
                  const std::vector<std::size_t>& indices,
                  const SweepOptions& options) {
  unsigned workers = options.jobs ? options.jobs
                                  : ThreadPool::default_threads();
  workers = static_cast<unsigned>(std::max<std::size_t>(
      1, std::min<std::size_t>(workers, std::max<std::size_t>(
                                            1, indices.size()))));

  ProgressTracker progress(indices.size(), options.progress);
  const auto run_one = [&](std::size_t i) {
    auto& slot = results.jobs[i];
    const auto start = std::chrono::steady_clock::now();
    try {
      slot.result = run_workload_dispatch(slot.job.workload, scale,
                                          slot.job.config, slot.job.seed);
      slot.ok = true;
    } catch (const std::exception& e) {
      slot.error = e.what();
    } catch (...) {
      slot.error = "unknown exception";
    }
    slot.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    progress.job_done(slot.ok);
  };

  const auto sweep_start = std::chrono::steady_clock::now();
  if (workers == 1) {
    // Serial reference path: same jobs, same slots, no threads at all.
    for (const std::size_t i : indices) run_one(i);
  } else {
    ThreadPool pool(workers);
    for (const std::size_t i : indices) {
      pool.submit([&run_one, i] { run_one(i); });
    }
    pool.wait_idle();
  }
  results.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - sweep_start)
                       .count();
  results.workers = workers;
}

SweepResults run_sweep(const SweepSpec& spec, const SweepOptions& options) {
  auto grid = expand_grid(spec);
  SweepResults out;
  out.jobs.resize(grid.size());
  std::vector<std::size_t> indices(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    out.jobs[i].job = std::move(grid[i]);
    indices[i] = i;
  }
  execute_jobs(out, spec.scale, indices, options);
  return out;
}

}  // namespace hymem::runner
