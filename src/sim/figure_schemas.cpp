#include "sim/figure_schemas.hpp"

#include <stdexcept>

#include "obs/timeline_io.hpp"

namespace hymem::sim {

namespace {

// The timeline table is the sweep runner's spliced export: job identity
// columns then the obs epoch columns. Composing from
// obs::timeline_csv_header() keeps one source of truth — the golden-header
// test pins this composed schema, which in turn pins the obs header.
std::vector<std::string> timeline_columns() {
  std::vector<std::string> columns = {"workload", "policy", "variant", "seed"};
  const auto& epoch = obs::timeline_csv_header();
  columns.insert(columns.end(), epoch.begin(), epoch.end());
  return columns;
}

}  // namespace

const std::vector<FigureSchema>& figure_schemas() {
  static const std::vector<FigureSchema> schemas = {
      {"fig1",
       "Fig. 1: DRAM-only APPR shares",
       {"static", "dynamic", "pagefault"},
       {"dram-only"}},
      {"fig2a",
       "Fig. 2a: CLOCK-DWF APPR / DRAM-only APPR",
       {"static", "dynamic", "migration"},
       {"clock-dwf"}},
      {"fig2b",
       "Fig. 2b: CLOCK-DWF AMAT / DRAM-only AMAT",
       {"requests", "migration"},
       {"clock-dwf"}},
      {"fig2c",
       "Fig. 2c: CLOCK-DWF NVM writes / NVM-only writes",
       {"pagefault", "migration", "demand"},
       {"clock-dwf"}},
      {"fig4a",
       "Fig. 4a: APPR / DRAM-only APPR",
       {"static", "dynamic", "migration"},
       {"clock-dwf", "two-lru"}},
      {"fig4b",
       "Fig. 4b: NVM writes / NVM-only writes",
       {"pagefault", "migration", "demand"},
       {"clock-dwf", "two-lru"}},
      {"fig4c",
       "Fig. 4c: proposed AMAT / CLOCK-DWF AMAT",
       {"requests", "migration"},
       {"two-lru"}},
  };
  return schemas;
}

const std::vector<TableSchema>& table_schemas() {
  static const std::vector<TableSchema> schemas = {
      {"table1",
       {"workload", "PHitDRAM", "PHitNVM", "PMiss", "PWDRAM", "PWNVM", "PMigD",
        "PMigN", "PDiskToD"}},
      {"table3",
       {"Workload", "Working Set (KB)", "# Reads", "# Writes", "read %",
        "write %", "write-dominant pages"}},
      {"timeline", timeline_columns()},
      // bench_sampled_frontier: the sampled-hotness accuracy-vs-overhead
      // frontier (sample period x ring depth x migration budget) against
      // the omniscient two-LRU and CLOCK-DWF baselines.
      {"sampled-frontier",
       {"workload", "policy", "variant", "sample_period", "ring_capacity",
        "migration_budget", "drain_period", "amat_total_ns",
        "amat_vs_two_lru", "appr_total_nj", "nvm_writes_total", "promotions",
        "demotions", "sample_drops", "migration_backlog"}},
      // bench_analytic: the closed-form estimator (model/analytic) against
      // exhaustive simulation over a threshold/window grid — per-cell
      // predicted-vs-simulated metrics and the frontier comparison (does
      // the analytic ranking recover the true top cells?).
      {"analytic-frontier",
       {"workload", "policy", "variant", "read_threshold", "write_threshold",
        "read_perc", "write_perc", "predicted_amat_ns", "simulated_amat_ns",
        "amat_rel_err", "predicted_hit_ratio", "simulated_hit_ratio",
        "predicted_rank", "simulated_rank", "in_top3_both"}},
      // bench_tenants: per-cell multi-tenant serving results — budget-mode
      // x shard-count grid with per-tenant AMAT percentiles, Jain fairness,
      // hot-set retention under the scan antagonist (isolation), and the
      // aggregate endurance/reconfiguration cost of arbitration.
      {"tenant-fairness",
       {"workload", "policy", "budget_mode", "shards", "tenants", "seed",
        "accesses", "amat_total_ns", "amat_p50_ns", "amat_p95_ns",
        "amat_p99_ns", "jain_index", "victim_retention",
        "victim_retention_solo", "retention_delta", "nvm_writes_total",
        "reconfigurations", "reconfig_evictions", "visible_latency_ns"}},
      // bench_tenants --timeline: per-epoch churn series of one cell.
      {"tenant-timeline",
       {"workload", "policy", "budget_mode", "shards", "epoch", "end_access",
        "active_tenants", "arrivals", "departures", "amat_total_ns",
        "amat_p95_ns", "jain_index", "dram_resident", "nvm_resident",
        "reconfigurations"}},
  };
  return schemas;
}

const FigureSchema& figure_schema(const std::string& id) {
  for (const FigureSchema& s : figure_schemas()) {
    if (s.id == id) return s;
  }
  throw std::logic_error("unknown figure schema id: " + id);
}

const TableSchema& table_schema(const std::string& id) {
  for (const TableSchema& s : table_schemas()) {
    if (s.id == id) return s;
  }
  throw std::logic_error("unknown table schema id: " + id);
}

}  // namespace hymem::sim
