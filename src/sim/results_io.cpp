#include "sim/results_io.hpp"

#include <iomanip>
#include <sstream>

#include "util/csv.hpp"
#include "util/json.hpp"

namespace hymem::sim {

namespace {

/// Minimal JSON emitter — enough for flat objects of numbers and strings.
class JsonObject {
 public:
  explicit JsonObject(std::ostream& out, int indent = 0)
      : out_(out), indent_(indent) {
    out_ << "{";
  }

  void field(const std::string& key, const std::string& value) {
    prefix(key);
    out_ << '"' << escape(value) << '"';
  }
  void field(const std::string& key, double value) {
    prefix(key);
    out_ << std::setprecision(12) << value;
  }
  void field(const std::string& key, std::uint64_t value) {
    prefix(key);
    out_ << value;
  }
  /// Opens a nested object; the caller must close it before continuing.
  void raw_field(const std::string& key) { prefix(key); }

  void close() {
    out_ << '\n';
    pad(indent_);
    out_ << "}";
  }

 private:
  void pad(int n) {
    for (int i = 0; i < n; ++i) out_ << ' ';
  }
  void prefix(const std::string& key) {
    if (!first_) out_ << ',';
    first_ = false;
    out_ << '\n';
    pad(indent_ + 2);
    out_ << '"' << escape(key) << "\": ";
  }
  static std::string escape(const std::string& s) {
    return util::json_escape(s);
  }

  std::ostream& out_;
  int indent_;
  bool first_ = true;
};

}  // namespace

void write_json(const RunResult& result, std::ostream& out) {
  const auto amat = result.amat();
  const auto power = result.appr();
  const auto writes = result.nvm_writes();
  const auto& c = result.counts;

  JsonObject root(out, 0);
  root.field("workload", result.workload);
  root.field("policy", result.policy);
  root.field("accesses", result.accesses);
  root.field("duration_s", result.duration_s);

  root.raw_field("counts");
  {
    JsonObject counts(out, 2);
    counts.field("dram_read_hits", c.dram_read_hits);
    counts.field("dram_write_hits", c.dram_write_hits);
    counts.field("nvm_read_hits", c.nvm_read_hits);
    counts.field("nvm_write_hits", c.nvm_write_hits);
    counts.field("page_faults", c.page_faults);
    counts.field("fills_to_dram", c.fills_to_dram);
    counts.field("fills_to_nvm", c.fills_to_nvm);
    counts.field("migrations_to_dram", c.migrations_to_dram);
    counts.field("migrations_to_nvm", c.migrations_to_nvm);
    counts.field("dirty_evictions", c.dirty_evictions);
    counts.field("page_factor", c.page_factor);
    counts.close();
  }

  root.raw_field("amat_ns");
  {
    JsonObject a(out, 2);
    a.field("hit", amat.hit_ns);
    a.field("fault", amat.fault_ns);
    a.field("migration", amat.migration_ns);
    a.field("total", amat.total());
    a.close();
  }

  root.raw_field("appr_nj");
  {
    JsonObject p(out, 2);
    p.field("static", power.static_nj);
    p.field("hit", power.hit_nj);
    p.field("fault_fill", power.fault_fill_nj);
    p.field("migration", power.migration_nj);
    p.field("total", power.total());
    p.close();
  }

  root.raw_field("nvm_writes");
  {
    JsonObject w(out, 2);
    w.field("demand", writes.demand_writes);
    w.field("fault_fill", writes.fault_fill_writes);
    w.field("migration", writes.migration_writes);
    w.field("total", writes.total());
    w.close();
  }
  root.close();
}

void write_json(const std::vector<RunResult>& results, std::ostream& out) {
  out << "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i) out << ",";
    out << "\n";
    write_json(results[i], out);
  }
  out << "\n]\n";
}

std::string to_json(const RunResult& result) {
  std::ostringstream os;
  write_json(result, os);
  return os.str();
}

namespace {

std::string fmt_double(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

}  // namespace

const std::vector<std::string>& csv_header() {
  static const std::vector<std::string> header = {
      "workload",
      "policy",
      "accesses",
      "duration_s",
      "dram_read_hits",
      "dram_write_hits",
      "nvm_read_hits",
      "nvm_write_hits",
      "page_faults",
      "fills_to_dram",
      "fills_to_nvm",
      "migrations_to_dram",
      "migrations_to_nvm",
      "dirty_evictions",
      "page_factor",
      "amat_hit_ns",
      "amat_fault_ns",
      "amat_migration_ns",
      "amat_total_ns",
      "appr_static_nj",
      "appr_hit_nj",
      "appr_fault_fill_nj",
      "appr_migration_nj",
      "appr_total_nj",
      "nvm_writes_demand",
      "nvm_writes_fault_fill",
      "nvm_writes_migration",
      "nvm_writes_total"};
  return header;
}

std::vector<std::string> csv_fields(const RunResult& result) {
  const auto amat = result.amat();
  const auto power = result.appr();
  const auto writes = result.nvm_writes();
  const auto& c = result.counts;
  return {result.workload,
          result.policy,
          std::to_string(result.accesses),
          fmt_double(result.duration_s),
          std::to_string(c.dram_read_hits),
          std::to_string(c.dram_write_hits),
          std::to_string(c.nvm_read_hits),
          std::to_string(c.nvm_write_hits),
          std::to_string(c.page_faults),
          std::to_string(c.fills_to_dram),
          std::to_string(c.fills_to_nvm),
          std::to_string(c.migrations_to_dram),
          std::to_string(c.migrations_to_nvm),
          std::to_string(c.dirty_evictions),
          std::to_string(c.page_factor),
          fmt_double(amat.hit_ns),
          fmt_double(amat.fault_ns),
          fmt_double(amat.migration_ns),
          fmt_double(amat.total()),
          fmt_double(power.static_nj),
          fmt_double(power.hit_nj),
          fmt_double(power.fault_fill_nj),
          fmt_double(power.migration_nj),
          fmt_double(power.total()),
          std::to_string(writes.demand_writes),
          std::to_string(writes.fault_fill_writes),
          std::to_string(writes.migration_writes),
          std::to_string(writes.total())};
}

void write_csv(const std::vector<RunResult>& results, std::ostream& out) {
  CsvWriter writer(out);
  writer.write_row(csv_header());
  for (const auto& result : results) writer.write_row(csv_fields(result));
}

}  // namespace hymem::sim
