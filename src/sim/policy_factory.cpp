#include "sim/policy_factory.hpp"

#include <stdexcept>

#include "core/migration_scheme.hpp"
#include "policy/clock_dwf.hpp"
#include "policy/dram_cache.hpp"
#include "policy/factory.hpp"
#include "policy/rank_mq.hpp"
#include "policy/single_tier.hpp"
#include "policy/static_partition.hpp"
#include "sample/sampled_policy.hpp"

namespace hymem::sim {

std::vector<std::string> policy_names() {
  return {"dram-only",  "nvm-only", "clock-dwf",   "two-lru",
          "two-lru-adaptive",       "static-partition",
          "dram-cache", "rank-mq",  "sampled-lru"};
}

namespace {

/// Unknown names usually arrive from CLI flags; list the registry in the
/// error so the caller does not have to go find it.
[[noreturn]] void throw_unknown_policy(const std::string& name) {
  std::string msg = "unknown policy: " + name + " (known: ";
  bool first = true;
  for (const std::string& known : policy_names()) {
    if (!first) msg += ", ";
    msg += known;
    first = false;
  }
  throw std::invalid_argument(msg + ")");
}

}  // namespace

std::vector<std::string> shardable_policy_names() {
  std::vector<std::string> names;
  for (std::string& name : policy_names()) {
    if (name.rfind("sampled-", 0) == 0) continue;
    names.push_back(std::move(name));
  }
  return names;
}

bool is_shardable(const std::string& name) {
  return name.rfind("sampled-", 0) != 0;
}

[[noreturn]] void throw_unshardable_policy(const std::string& context,
                                           const std::string& name) {
  std::string msg = context + " does not support policy: " + name +
                    " (the sampled hotness tap and background migrator are "
                    "per-run global structures; supported: ";
  bool first = true;
  for (const std::string& known : shardable_policy_names()) {
    if (!first) msg += ", ";
    msg += known;
    first = false;
  }
  throw std::invalid_argument(msg + ")");
}

bool is_single_tier(const std::string& name) {
  return name.rfind("dram-only", 0) == 0 || name.rfind("nvm-only", 0) == 0;
}

std::unique_ptr<policy::HybridPolicy> make_policy(
    const std::string& name, os::Vmm& vmm,
    const core::MigrationConfig& migration,
    const sample::SampleConfig& sample) {
  if (is_single_tier(name)) {
    const bool dram = name.rfind("dram-only", 0) == 0;
    const Tier tier = dram ? Tier::kDram : Tier::kNvm;
    const std::string base = dram ? "dram-only" : "nvm-only";
    std::string repl = "lru";
    if (name.size() > base.size()) {
      if (name[base.size()] != ':') {
        throw_unknown_policy(name);
      }
      repl = name.substr(base.size() + 1);
    }
    return std::make_unique<policy::SingleTierPolicy>(
        vmm, tier,
        policy::make_replacement(repl,
                                 static_cast<std::size_t>(vmm.frames(tier))));
  }
  if (name == "clock-dwf") {
    return std::make_unique<policy::ClockDwfPolicy>(vmm);
  }
  if (name == "two-lru" || name == "two-lru-adaptive") {
    core::MigrationConfig cfg = migration;
    cfg.adaptive = (name == "two-lru-adaptive");
    return std::make_unique<core::TwoLruMigrationPolicy>(vmm, cfg);
  }
  if (name == "static-partition") {
    return std::make_unique<policy::StaticPartitionPolicy>(vmm);
  }
  if (name == "dram-cache") {
    return std::make_unique<policy::DramCachePolicy>(vmm);
  }
  if (name == "rank-mq") {
    return std::make_unique<policy::RankMqPolicy>(vmm);
  }
  if (name == "sampled-lru") {
    return std::make_unique<sample::SampledLruPolicy>(vmm, sample);
  }
  throw_unknown_policy(name);
}

}  // namespace hymem::sim
