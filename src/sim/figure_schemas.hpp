// Registry of the paper-artifact output schemas: every bench_fig* stacked
// figure (title, stack components, bar series) and every bench_table* column
// list lives here instead of being retyped inside each bench main().
//
// The point is stability: these CSV/text headers are the interface consumed
// by plotting scripts and by the results archive, so the schemas are pinned
// by golden tests (tests/sim/test_figure_schemas.cpp) and a bench can no
// longer drift its output shape silently.
#pragma once

#include <string>
#include <vector>

#include "sim/reporter.hpp"

namespace hymem::sim {

/// Shape of one stacked paper figure.
struct FigureSchema {
  std::string id;     ///< short handle, e.g. "fig4a"
  std::string title;  ///< the rendered table title
  std::vector<std::string> components;
  std::vector<std::string> series;

  /// An empty FigureTable of this shape.
  FigureTable make_table() const { return {title, components, series}; }
  /// The exact CSV header a table of this shape emits.
  std::vector<std::string> csv_header() const {
    return make_table().csv_header();
  }
};

/// Shape of one paper text table (column names only).
struct TableSchema {
  std::string id;
  std::vector<std::string> columns;
};

/// All registered figures, in paper order.
const std::vector<FigureSchema>& figure_schemas();
/// All registered text tables, in paper order.
const std::vector<TableSchema>& table_schemas();

/// Lookup by id ("fig1", "fig2a", ... / "table1", "table3"); throws
/// std::logic_error on an unknown id.
const FigureSchema& figure_schema(const std::string& id);
const TableSchema& table_schema(const std::string& id);

}  // namespace hymem::sim
