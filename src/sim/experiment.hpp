// Experiment runner: the paper's evaluation methodology in one call.
//
// Sizing rule (Section V.A): total main memory = `memory_fraction` (75%) of
// the workload's footprint pages; DRAM = `dram_fraction` (10%) of that
// memory. Single-module policies get the whole budget as one module.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/migration_config.hpp"
#include "mem/technology.hpp"
#include "model/analytic.hpp"
#include "sample/config.hpp"
#include "sim/engine.hpp"
#include "synth/workload_profile.hpp"
#include "trace/trace.hpp"

namespace hymem::sim {

/// How `ExperimentConfig::shards > 1` parallelizes one run.
enum class ShardMode {
  /// Shards stripe the *decode* stage (page shift + hash mixer) and replay
  /// stays a single serial policy pass over the decoded blocks — results
  /// are byte-identical to the serial engine for any shard count. The
  /// default, and the mode the CI determinism smokes gate.
  kExact,
  /// Pages are hash-partitioned across `shards` independent policy
  /// instances, each with a proportional slice of the DRAM/NVM budget, and
  /// the per-shard results are merged deterministically (shard-index
  /// order). Deterministic for a fixed shard count but an approximation of
  /// the global policy: shard-local LRU cannot see cross-shard recency.
  /// Executed by runner::run_sharded_experiment (the runner layer owns the
  /// thread pool).
  kPartitioned,
};

/// One experiment = one (policy, sizing, workload) run.
struct ExperimentConfig {
  std::string policy = "two-lru";
  double memory_fraction = 0.75;  ///< Memory pages / footprint pages.
  double dram_fraction = 0.10;    ///< DRAM frames / memory frames.
  std::uint64_t page_size = 4096;
  std::uint64_t access_granularity = 64;  ///< PageFactor = page/granularity.
  mem::MemTechnology dram = mem::dram_table4();
  mem::MemTechnology nvm = mem::pcm_table4();
  mem::DiskModel disk{};
  core::MigrationConfig migration{};
  /// Sampled-hotness tunables; consulted only when `policy` is a
  /// "sampled-*" name. The tap is wired automatically for those runs
  /// (warmup included on the two-trace path) and the end-of-run counters
  /// land in RunResult::sampled.
  sample::SampleConfig sample{};
  mem::TransferMode transfer_mode = mem::TransferMode::kDma;
  bool wear_leveling = false;
  /// Uncounted replays of the trace before the measured pass (steady-state
  /// measurement; see run_trace).
  unsigned warmup_passes = 1;
  /// When nonzero, the measured pass samples an epoch time-series every
  /// `timeline_epoch` accesses into RunResult::timeline (obs::EpochSampler).
  /// Zero (the default) keeps the replay loop uninstrumented.
  std::uint64_t timeline_epoch = 0;
  /// When nonzero, replay goes through the block engine (sim::run_blocks)
  /// in blocks of this many accesses instead of the one-access-at-a-time
  /// reference loop. Results are byte-identical for any value; 0 keeps the
  /// historical run_trace path.
  std::uint64_t chunk_accesses = 0;
  /// Workers for one run (1 = serial). Interpretation depends on
  /// `shard_mode`; byte-identity across shard counts holds only for
  /// ShardMode::kExact.
  unsigned shards = 1;
  ShardMode shard_mode = ShardMode::kExact;
};

/// Memory sizing derived from a trace's footprint.
struct MemorySizing {
  std::uint64_t total_frames = 0;
  std::uint64_t dram_frames = 0;
  std::uint64_t nvm_frames = 0;
};

/// Computes the Section V.A sizing for a given footprint.
MemorySizing size_memory(std::uint64_t footprint_pages,
                         const ExperimentConfig& config);

/// Runs one experiment over an existing memory trace. `duration_s` feeds the
/// Eq. 3 static proration.
RunResult run_experiment(const trace::Trace& trace, double duration_s,
                         const ExperimentConfig& config);

/// Two-trace variant: memory is sized from (and warmed on) `warmup`, then
/// `measured` is replayed with counting on. This is how run_workload
/// realizes the paper's steady-state methodology: the warmup trace covers
/// the full Table III footprint (cold start), while the measured trace has
/// the same distribution without the one-time cold touches.
RunResult run_experiment(const trace::Trace& warmup,
                         const trace::Trace& measured, double duration_s,
                         const ExperimentConfig& config);

/// Generates the synthetic traces for `profile` (divided by `scale`) and
/// runs the steady-state experiment on them.
RunResult run_workload(const synth::WorkloadProfile& profile,
                       std::uint64_t scale, const ExperimentConfig& config,
                       std::uint64_t seed = 42);

// --- Analytic fast path (model/analytic) -------------------------------------

/// True when `config` names a cell the analytic estimator models: the
/// two-LRU scheme with static thresholds, or the LRU single-tier baselines.
/// Adaptive thresholds, sampled policies and the other hybrid baselines must
/// be simulated.
bool analytic_supported(const ExperimentConfig& config);

/// Maps one experiment cell onto the estimator's input: the raw frame counts
/// from the Section V.A sizing plus ModelParams mirrored from the config.
/// Lives here (not in model/) because MemorySizing and ExperimentConfig are
/// sim-layer types — model stays below sim.
model::AnalyticConfig analytic_config_for(const ExperimentConfig& config,
                                          const MemorySizing& sizing,
                                          double duration_s);

/// A workload characterized once for any number of analytic evaluations:
/// the measured-window reuse profile, the sizing footprint and the ROI wall
/// time — the exact analytic mirror of run_workload (same generator seeds,
/// same steady-state split; the analyzer observes the warmup trace, resets
/// its statistics keeping the LRU stack, then observes the measured trace).
struct AnalyticWorkload {
  trace::ReuseProfile profile;
  std::uint64_t footprint_pages = 0;  ///< Warmup-trace footprint (sizing).
  double duration_s = 0.0;            ///< Scaled ROI seconds.
};

/// Characterizes `profile` (divided by `scale`) the way run_workload would
/// run it. One O(n log n) pass; reuse the result across a whole config grid.
AnalyticWorkload characterize_workload(const synth::WorkloadProfile& profile,
                                       std::uint64_t scale,
                                       const ExperimentConfig& config,
                                       std::uint64_t seed = 42);

/// The full fast path for one cell: size memory from the characterized
/// footprint, map the config, estimate. Throws std::invalid_argument for
/// unsupported policies (mirror of make_policy's contract).
model::AnalyticEstimate analytic_estimate(const AnalyticWorkload& workload,
                                          const ExperimentConfig& config);

}  // namespace hymem::sim
