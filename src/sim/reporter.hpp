// Figure-shaped reporting: normalized stacked breakdowns per workload with
// the paper's G-Mean / A-Mean summary rows, rendered as text and CSV.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "model/model_params.hpp"

namespace hymem::sim {

/// One stacked bar: named components summing to the bar total.
struct Stack {
  std::vector<double> parts;  // same order as FigureTable's component names

  double total() const;
};

/// Accumulates per-workload stacked bars (possibly several bars per
/// workload, e.g. CLOCK-DWF vs proposed) and renders a paper-figure-shaped
/// table with G-Mean and A-Mean rows over each bar column's totals.
class FigureTable {
 public:
  /// `components` are the stack part names (e.g. {"static","dynamic",
  /// "migration"}); `series` are the bar names per workload (e.g.
  /// {"clock-dwf","two-lru"}).
  FigureTable(std::string title, std::vector<std::string> components,
              std::vector<std::string> series);

  /// Adds one workload row: `stacks` has one Stack per series.
  void add(const std::string& workload, const std::vector<Stack>& stacks);

  /// Renders: header, one row per workload with per-component columns and a
  /// total per series, then G-Mean/A-Mean rows over totals.
  void print(std::ostream& out) const;

  /// Machine-readable dump of the same data.
  void print_csv(std::ostream& out) const;

  /// The exact CSV header print_csv emits: "workload", then
  /// "<series>:<component>"... and "<series>:total" per series. Golden
  /// tests pin this per figure so downstream CSV consumers never break
  /// silently.
  std::vector<std::string> csv_header() const;

  const std::string& title() const { return title_; }
  const std::vector<std::string>& components() const { return components_; }
  const std::vector<std::string>& series() const { return series_; }

  /// Geometric mean of one series' totals.
  double geomean_total(std::size_t series_index) const;
  /// Arithmetic mean of one series' totals.
  double amean_total(std::size_t series_index) const;

 private:
  struct Row {
    std::string workload;
    std::vector<Stack> stacks;
  };

  std::string title_;
  std::vector<std::string> components_;
  std::vector<std::string> series_;
  std::vector<Row> rows_;
};

/// Prints the Table IV memory-characteristics header every bench leads with.
void print_memory_characteristics(std::ostream& out,
                                  const mem::MemTechnology& dram,
                                  const mem::MemTechnology& nvm);

}  // namespace hymem::sim
