#include "sim/reporter.hpp"

#include <numeric>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hymem::sim {

double Stack::total() const {
  return std::accumulate(parts.begin(), parts.end(), 0.0);
}

FigureTable::FigureTable(std::string title, std::vector<std::string> components,
                         std::vector<std::string> series)
    : title_(std::move(title)),
      components_(std::move(components)),
      series_(std::move(series)) {
  HYMEM_CHECK(!components_.empty());
  HYMEM_CHECK(!series_.empty());
}

void FigureTable::add(const std::string& workload,
                      const std::vector<Stack>& stacks) {
  HYMEM_CHECK_MSG(stacks.size() == series_.size(), "series arity mismatch");
  for (const Stack& s : stacks) {
    HYMEM_CHECK_MSG(s.parts.size() == components_.size(),
                    "component arity mismatch");
  }
  rows_.push_back(Row{workload, stacks});
}

double FigureTable::geomean_total(std::size_t series_index) const {
  HYMEM_CHECK(series_index < series_.size());
  std::vector<double> totals;
  totals.reserve(rows_.size());
  for (const Row& r : rows_) totals.push_back(r.stacks[series_index].total());
  return geometric_mean(totals);
}

double FigureTable::amean_total(std::size_t series_index) const {
  HYMEM_CHECK(series_index < series_.size());
  std::vector<double> totals;
  totals.reserve(rows_.size());
  for (const Row& r : rows_) totals.push_back(r.stacks[series_index].total());
  return arithmetic_mean(totals);
}

void FigureTable::print(std::ostream& out) const {
  out << "== " << title_ << " ==\n";
  std::vector<std::string> header{"workload"};
  for (const auto& s : series_) {
    for (const auto& c : components_) header.push_back(s + ":" + c);
    header.push_back(s + ":total");
  }
  TextTable table(header);
  for (const Row& r : rows_) {
    std::vector<std::string> row{r.workload};
    for (const Stack& s : r.stacks) {
      for (double part : s.parts) row.push_back(TextTable::fmt(part));
      row.push_back(TextTable::fmt(s.total()));
    }
    table.add_row(row);
  }
  for (const char* mean : {"G-Mean", "A-Mean"}) {
    std::vector<std::string> row{mean};
    const bool geo = std::string_view(mean) == "G-Mean";
    for (std::size_t s = 0; s < series_.size(); ++s) {
      for (std::size_t c = 0; c < components_.size(); ++c) row.emplace_back("-");
      row.push_back(TextTable::fmt(geo ? geomean_total(s) : amean_total(s)));
    }
    table.add_row(row);
  }
  out << table.to_string();
}

std::vector<std::string> FigureTable::csv_header() const {
  std::vector<std::string> header{"workload"};
  for (const auto& s : series_) {
    for (const auto& c : components_) header.push_back(s + ":" + c);
    header.push_back(s + ":total");
  }
  return header;
}

void FigureTable::print_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.write_row(csv_header());
  for (const Row& r : rows_) {
    std::vector<std::string> row{r.workload};
    for (const Stack& s : r.stacks) {
      for (double part : s.parts) row.push_back(TextTable::fmt(part, 6));
      row.push_back(TextTable::fmt(s.total(), 6));
    }
    csv.write_row(row);
  }
}

void print_memory_characteristics(std::ostream& out,
                                  const mem::MemTechnology& dram,
                                  const mem::MemTechnology& nvm) {
  out << "Memory characteristics (Table IV):\n";
  TextTable table({"memory", "latency r/w (ns)", "power r/w (nJ)",
                   "static power (J/GB.s)"});
  auto row = [&](const mem::MemTechnology& t) {
    table.add_row({t.name,
                   TextTable::fmt(t.read_latency_ns, 0) + "/" +
                       TextTable::fmt(t.write_latency_ns, 0),
                   TextTable::fmt(t.read_energy_nj, 1) + "/" +
                       TextTable::fmt(t.write_energy_nj, 1),
                   TextTable::fmt(t.static_power_j_per_gb_s, 2)});
  };
  row(dram);
  row(nvm);
  out << table.to_string();
}

}  // namespace hymem::sim
