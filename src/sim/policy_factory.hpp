// Hybrid-policy factory: builds any policy in the suite by name against a
// configured VMM.
//
// Names:
//   "dram-only"          DRAM-only main memory, LRU (Fig. 1 baseline)
//   "dram-only:<repl>"   DRAM-only with another replacement policy
//   "nvm-only"           NVM-only main memory, LRU (endurance baseline)
//   "nvm-only:<repl>"    NVM-only with another replacement policy
//   "clock-dwf"          CLOCK-DWF (Lee et al.)
//   "two-lru"            the paper's proposed scheme
//   "two-lru-adaptive"   proposed scheme + adaptive thresholds (extension)
//   "static-partition"   hash-partitioned hybrid, no migrations (ablation)
//   "dram-cache"         promote-on-touch DRAM cache over NVM (related work)
//   "sampled-lru"        sampled hotness + async bounded migrator (src/sample)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/migration_config.hpp"
#include "policy/hybrid_policy.hpp"
#include "sample/config.hpp"

namespace hymem::sim {

/// All accepted base names.
std::vector<std::string> policy_names();

/// Base names usable where one run is split across independent policy
/// instances sharing a physical budget (partitioned shards, tenant groups):
/// everything except the sampled-* family, whose hotness tap and background
/// migrator are per-run global structures.
std::vector<std::string> shardable_policy_names();

/// True if the name can run split across independent policy instances.
bool is_shardable(const std::string& name);

/// Rejects a policy a split-budget context cannot host. `context` names the
/// caller ("partitioned sharding", "tenant groups"); the message enumerates
/// the supported names so CLI users do not have to go find them.
[[noreturn]] void throw_unshardable_policy(const std::string& context,
                                           const std::string& name);

/// True if the name denotes a single-module (DRAM-only/NVM-only) policy.
bool is_single_tier(const std::string& name);

/// Builds a policy. The VMM must be sized consistently (single-module
/// policies need the other module at zero frames). `sample` configures the
/// "sampled-lru" policy and is ignored by every other name. Throws
/// std::invalid_argument for unknown names, listing the known ones.
std::unique_ptr<policy::HybridPolicy> make_policy(
    const std::string& name, os::Vmm& vmm,
    const core::MigrationConfig& migration = {},
    const sample::SampleConfig& sample = {});

}  // namespace hymem::sim
