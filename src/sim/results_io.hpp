// Result serialization: RunResult -> JSON, so external tooling (plotting,
// regression tracking, notebooks) can consume simulation output without
// scraping the text tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace hymem::sim {

/// Writes one result as a JSON object: identification, raw event counts,
/// and the derived Eq. 1/2/3 breakdowns. Deterministic field order.
void write_json(const RunResult& result, std::ostream& out);

/// Writes several results as a JSON array.
void write_json(const std::vector<RunResult>& results, std::ostream& out);

/// Convenience: the JSON text of one result.
std::string to_json(const RunResult& result);

}  // namespace hymem::sim
