// Result serialization: RunResult -> JSON/CSV, so external tooling
// (plotting, regression tracking, notebooks) can consume simulation output
// without scraping the text tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace hymem::sim {

/// Writes one result as a JSON object: identification, raw event counts,
/// and the derived Eq. 1/2/3 breakdowns. Deterministic field order.
void write_json(const RunResult& result, std::ostream& out);

/// Writes several results as a JSON array.
void write_json(const std::vector<RunResult>& results, std::ostream& out);

/// Convenience: the JSON text of one result.
std::string to_json(const RunResult& result);

/// Column names of the flat CSV projection of a RunResult: identification,
/// raw event counts, then the derived Eq. 1/2/3 metrics. Stable order; the
/// sweep runner splices these columns into its own export.
const std::vector<std::string>& csv_header();

/// Formatted values for one result, same order as csv_header(). Doubles use
/// the same 12-significant-digit format as the JSON emitter, so serial and
/// parallel sweeps over identical jobs serialize byte-identically.
std::vector<std::string> csv_fields(const RunResult& result);

/// Header + one row per result (RFC-4180 quoting via util/csv).
void write_csv(const std::vector<RunResult>& results, std::ostream& out);

}  // namespace hymem::sim
