#include "sim/engine.hpp"

#include "trace/access.hpp"
#include "util/check.hpp"

namespace hymem::sim {

RunResult run_trace(policy::HybridPolicy& policy, const trace::Trace& trace,
                    double duration_s, unsigned warmup_passes) {
  HYMEM_CHECK_MSG(!trace.empty(), "empty trace");
  os::Vmm& vmm = policy.vmm();
  const std::uint64_t page_size = vmm.config().page_size;
  for (unsigned pass = 0; pass < warmup_passes; ++pass) {
    for (const auto& access : trace) {
      policy.on_access(trace::page_of(access.addr, page_size), access.type);
    }
    vmm.reset_accounting();
  }
  RunResult result;
  result.policy = std::string(policy.name());
  result.workload = trace.name();
  result.duration_s = duration_s;
  for (const auto& access : trace) {
    const PageId page = trace::page_of(access.addr, page_size);
    result.visible_latency_ns += policy.on_access(page, access.type);
    ++result.accesses;
  }
  result.counts = model::EventCounts::from_vmm(vmm, result.accesses);
  result.params = model::ModelParams::from_vmm(vmm);
  return result;
}

RunResult run_stream(policy::HybridPolicy& policy,
                     trace::StreamTraceReader& reader, double duration_s) {
  os::Vmm& vmm = policy.vmm();
  const std::uint64_t page_size = vmm.config().page_size;
  RunResult result;
  result.policy = std::string(policy.name());
  result.workload = reader.name();
  result.duration_s = duration_s;
  while (const auto access = reader.next()) {
    const PageId page = trace::page_of(access->addr, page_size);
    result.visible_latency_ns += policy.on_access(page, access->type);
    ++result.accesses;
  }
  HYMEM_CHECK_MSG(result.accesses > 0, "empty stream");
  result.counts = model::EventCounts::from_vmm(vmm, result.accesses);
  result.params = model::ModelParams::from_vmm(vmm);
  return result;
}

}  // namespace hymem::sim
