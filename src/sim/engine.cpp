#include "sim/engine.hpp"

#include "trace/access.hpp"
#include "trace/interner.hpp"
#include "util/check.hpp"

namespace hymem::sim {

namespace {
/// How many accesses ahead the replay loop warms policy cache lines. The
/// decoded page sequence makes the future known; ~8 accesses (a few hundred
/// nanoseconds of policy work) is enough to cover a memory round-trip
/// without evicting lines before they are used.
constexpr std::size_t kReplayPrefetchDistance = 8;
}  // namespace

RunResult run_trace(policy::HybridPolicy& policy, const trace::Trace& trace,
                    double duration_s, unsigned warmup_passes) {
  HYMEM_CHECK_MSG(!trace.empty(), "empty trace");
  os::Vmm& vmm = policy.vmm();
  // Decode addresses to pages once; every warmup pass and the measured pass
  // replay the cached page sequence instead of re-dividing per access.
  const trace::PageIdInterner interner(trace, vmm.config().page_size);
  const std::span<const PageId> pages = interner.pages();
  const std::span<const trace::MemAccess> accesses = trace.accesses();
  for (unsigned pass = 0; pass < warmup_passes; ++pass) {
    for (std::size_t i = 0; i < pages.size(); ++i) {
      if (i + kReplayPrefetchDistance < pages.size()) {
        policy.prefetch(pages[i + kReplayPrefetchDistance]);
      }
      policy.on_access(pages[i], accesses[i].type);
    }
    vmm.reset_accounting();
  }
  RunResult result;
  result.policy = std::string(policy.name());
  result.workload = trace.name();
  result.duration_s = duration_s;
  for (std::size_t i = 0; i < pages.size(); ++i) {
    if (i + kReplayPrefetchDistance < pages.size()) {
      policy.prefetch(pages[i + kReplayPrefetchDistance]);
    }
    result.visible_latency_ns += policy.on_access(pages[i], accesses[i].type);
  }
  result.accesses = pages.size();
  result.counts = model::EventCounts::from_vmm(vmm, result.accesses);
  result.params = model::ModelParams::from_vmm(vmm);
  return result;
}

RunResult run_stream(policy::HybridPolicy& policy,
                     trace::StreamTraceReader& reader, double duration_s) {
  os::Vmm& vmm = policy.vmm();
  const std::uint64_t page_size = vmm.config().page_size;
  RunResult result;
  result.policy = std::string(policy.name());
  result.workload = reader.name();
  result.duration_s = duration_s;
  while (const auto access = reader.next()) {
    const PageId page = trace::page_of(access->addr, page_size);
    result.visible_latency_ns += policy.on_access(page, access->type);
    ++result.accesses;
  }
  HYMEM_CHECK_MSG(result.accesses > 0, "empty stream");
  result.counts = model::EventCounts::from_vmm(vmm, result.accesses);
  result.params = model::ModelParams::from_vmm(vmm);
  return result;
}

}  // namespace hymem::sim
