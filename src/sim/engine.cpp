#include "sim/engine.hpp"

#include <stdexcept>

#include "trace/access.hpp"
#include "trace/interner.hpp"
#include "util/check.hpp"

namespace hymem::sim {

namespace {
/// How many accesses ahead the replay loop warms policy cache lines. The
/// decoded page sequence makes the future known; ~8 accesses (a few hundred
/// nanoseconds of policy work) is enough to cover a memory round-trip
/// without evicting lines before they are used.
constexpr std::size_t kReplayPrefetchDistance = 8;
}  // namespace

RunResult run_trace(policy::HybridPolicy& policy, const trace::Trace& trace,
                    double duration_s, unsigned warmup_passes,
                    obs::RunObserver* observer) {
  // invalid_argument (bad input) rather than HYMEM_CHECK (logic error):
  // the sweep runner converts it into a structured per-job failure instead
  // of the whole process dying on one truncated capture.
  if (trace.empty()) {
    throw std::invalid_argument("empty trace: \"" + trace.name() +
                                "\" has no accesses to replay");
  }
  os::Vmm& vmm = policy.vmm();
  // Decode addresses to pages once; every warmup pass and the measured pass
  // replay the cached page sequence instead of re-dividing per access.
  const trace::PageIdInterner interner(trace, vmm.config().page_size);
  const std::span<const PageId> pages = interner.pages();
  const std::span<const trace::MemAccess> accesses = trace.accesses();
  for (unsigned pass = 0; pass < warmup_passes; ++pass) {
    for (std::size_t i = 0; i < pages.size(); ++i) {
      if (i + kReplayPrefetchDistance < pages.size()) {
        policy.prefetch(pages[i + kReplayPrefetchDistance]);
      }
      policy.on_access(pages[i], accesses[i].type);
    }
    vmm.reset_accounting();
  }
  RunResult result;
  result.policy = std::string(policy.name());
  result.workload = trace.name();
  result.duration_s = duration_s;
  if (observer == nullptr) {
    for (std::size_t i = 0; i < pages.size(); ++i) {
      if (i + kReplayPrefetchDistance < pages.size()) {
        policy.prefetch(pages[i + kReplayPrefetchDistance]);
      }
      result.visible_latency_ns += policy.on_access(pages[i], accesses[i].type);
    }
  } else {
    // Separate instrumented loop so the uninstrumented replay path carries
    // no per-access observer branch at all.
    for (std::size_t i = 0; i < pages.size(); ++i) {
      if (i + kReplayPrefetchDistance < pages.size()) {
        policy.prefetch(pages[i + kReplayPrefetchDistance]);
      }
      const Nanoseconds latency =
          policy.on_access(pages[i], accesses[i].type);
      result.visible_latency_ns += latency;
      observer->on_access(pages[i], accesses[i].type, latency);
    }
    observer->on_run_end();
  }
  result.accesses = pages.size();
  result.counts = model::EventCounts::from_vmm(vmm, result.accesses);
  result.params = model::ModelParams::from_vmm(vmm);
  return result;
}

RunResult run_blocks(policy::HybridPolicy& policy, trace::BlockSource& source,
                     double duration_s, unsigned warmup_passes,
                     obs::RunObserver* observer) {
  os::Vmm& vmm = policy.vmm();
  for (unsigned pass = 0; pass < warmup_passes; ++pass) {
    if (pass > 0) source.rewind();
    while (const trace::DecodedBlock* block = source.next()) {
      policy.on_block({block->pages, block->types, block->hashes, block->size});
    }
    vmm.reset_accounting();
  }
  if (warmup_passes > 0) source.rewind();
  RunResult result;
  result.policy = std::string(policy.name());
  result.workload = source.name();
  result.duration_s = duration_s;
  if (observer == nullptr) {
    while (const trace::DecodedBlock* block = source.next()) {
      result.visible_latency_ns += policy.on_block(
          {block->pages, block->types, block->hashes, block->size});
      result.accesses += block->size;
    }
  } else {
    // Instrumented measured pass: the observer contract is per-access, so
    // serve through on_access (semantically what on_block batches) and keep
    // the uninstrumented path branch-free, mirroring run_trace.
    while (const trace::DecodedBlock* block = source.next()) {
      for (std::size_t i = 0; i < block->size; ++i) {
        if (i + kReplayPrefetchDistance < block->size) {
          policy.prefetch(block->pages[i + kReplayPrefetchDistance]);
        }
        const Nanoseconds latency =
            policy.on_access(block->pages[i], block->types[i]);
        result.visible_latency_ns += latency;
        observer->on_access(block->pages[i], block->types[i], latency);
      }
      result.accesses += block->size;
    }
    observer->on_run_end();
  }
  if (result.accesses == 0) {
    throw std::invalid_argument("empty block source: \"" + source.name() +
                                "\" has no accesses to replay");
  }
  result.counts = model::EventCounts::from_vmm(vmm, result.accesses);
  result.params = model::ModelParams::from_vmm(vmm);
  return result;
}

RunResult run_stream(policy::HybridPolicy& policy,
                     trace::StreamTraceReader& reader, double duration_s,
                     obs::RunObserver* observer) {
  os::Vmm& vmm = policy.vmm();
  const std::uint64_t page_size = vmm.config().page_size;
  RunResult result;
  result.policy = std::string(policy.name());
  result.workload = reader.name();
  result.duration_s = duration_s;
  while (const auto access = reader.next()) {
    const PageId page = trace::page_of(access->addr, page_size);
    const Nanoseconds latency = policy.on_access(page, access->type);
    result.visible_latency_ns += latency;
    ++result.accesses;
    if (observer != nullptr) observer->on_access(page, access->type, latency);
  }
  if (observer != nullptr) observer->on_run_end();
  if (result.accesses == 0) {
    throw std::invalid_argument("empty stream: \"" + reader.name() +
                                "\" yielded no accesses");
  }
  result.counts = model::EventCounts::from_vmm(vmm, result.accesses);
  result.params = model::ModelParams::from_vmm(vmm);
  return result;
}

}  // namespace hymem::sim
