// Simulation engine: replays a memory trace through a hybrid policy and
// packages the resulting event counts and model inputs.
#pragma once

#include <cstdint>
#include <string>

#include "model/endurance_model.hpp"
#include "model/events.hpp"
#include "model/model_params.hpp"
#include "model/perf_model.hpp"
#include "model/power_model.hpp"
#include "obs/epoch.hpp"
#include "obs/sampled_stats.hpp"
#include "obs/tap.hpp"
#include "policy/hybrid_policy.hpp"
#include "trace/block_source.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace.hpp"

namespace hymem::sim {

/// Everything one run produces.
struct RunResult {
  std::string policy;
  std::string workload;
  std::uint64_t accesses = 0;
  double duration_s = 0;  ///< ROI wall time used for static proration.
  model::EventCounts counts;
  model::ModelParams params;
  /// Sum of the per-request latencies the policy reported (sanity handle;
  /// the headline metric is the Eq. 1 AMAT over `counts`).
  Nanoseconds visible_latency_ns = 0;
  /// Epoch time-series (empty unless the run sampled one; see
  /// ExperimentConfig::timeline_epoch and obs::EpochSampler).
  obs::Timeline timeline;
  /// End-of-run counters of the sampled-hotness subsystem; meaningful only
  /// when `has_sampled` (the run's policy was sampled-lru).
  obs::SampledStats sampled;
  bool has_sampled = false;

  model::AmatBreakdown amat() const { return model::amat(counts, params); }
  model::PowerBreakdown appr() const {
    return model::appr(counts, params, duration_s);
  }
  model::NvmWriteBreakdown nvm_writes() const {
    return model::nvm_writes(counts);
  }
};

/// Replays `trace` (page-granular: addresses are mapped with the VMM's page
/// size) through `policy`. `duration_s` is the workload's ROI wall time.
///
/// `warmup_passes` replays of the trace run first with accounting reset
/// afterwards, so the measured pass reflects the steady state (the paper
/// sizes inputs "to minimize the effect of starting from cold memory").
///
/// `observer` (optional) sees every *measured* access (never warmup) plus
/// one on_run_end(); null costs a single predicted branch per access.
///
/// Throws std::invalid_argument on an empty trace — bad input, not a logic
/// error, so the sweep runner reports it as a per-job failure.
RunResult run_trace(policy::HybridPolicy& policy, const trace::Trace& trace,
                    double duration_s, unsigned warmup_passes = 0,
                    obs::RunObserver* observer = nullptr);

/// Block-replay engine: consumes decoded blocks from a BlockSource and
/// serves each through the policy's on_block fast path (or, when an
/// observer is attached, a per-access instrumented loop with identical
/// semantics). This is the streaming engine proper — the source decides
/// whether blocks come from a decode-once cache (TraceBlockSource) or a
/// double-buffered O(chunk) stream (StreamBlockSource); results are
/// byte-identical either way, and byte-identical to run_trace.
///
/// The source must be positioned at its start. Each pass after the first
/// (warmup passes plus the measured pass) rewinds the source, so multi-pass
/// replay needs a rewindable source; `warmup_passes == 0` performs a single
/// forward pass and works on non-seekable streams too.
///
/// Throws std::invalid_argument when the source yields no accesses.
RunResult run_blocks(policy::HybridPolicy& policy, trace::BlockSource& source,
                     double duration_s, unsigned warmup_passes = 0,
                     obs::RunObserver* observer = nullptr);

/// Streaming variant: pulls records from a chunked stream reader
/// (constant memory — for captures too large to materialize). No warmup
/// support: streams are single-pass. Throws std::invalid_argument when the
/// stream yields no accesses.
RunResult run_stream(policy::HybridPolicy& policy,
                     trace::StreamTraceReader& reader, double duration_s,
                     obs::RunObserver* observer = nullptr);

}  // namespace hymem::sim
