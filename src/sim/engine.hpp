// Simulation engine: replays a memory trace through a hybrid policy and
// packages the resulting event counts and model inputs.
#pragma once

#include <cstdint>
#include <string>

#include "model/endurance_model.hpp"
#include "model/events.hpp"
#include "model/model_params.hpp"
#include "model/perf_model.hpp"
#include "model/power_model.hpp"
#include "policy/hybrid_policy.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace.hpp"

namespace hymem::sim {

/// Everything one run produces.
struct RunResult {
  std::string policy;
  std::string workload;
  std::uint64_t accesses = 0;
  double duration_s = 0;  ///< ROI wall time used for static proration.
  model::EventCounts counts;
  model::ModelParams params;
  /// Sum of the per-request latencies the policy reported (sanity handle;
  /// the headline metric is the Eq. 1 AMAT over `counts`).
  Nanoseconds visible_latency_ns = 0;

  model::AmatBreakdown amat() const { return model::amat(counts, params); }
  model::PowerBreakdown appr() const {
    return model::appr(counts, params, duration_s);
  }
  model::NvmWriteBreakdown nvm_writes() const {
    return model::nvm_writes(counts);
  }
};

/// Replays `trace` (page-granular: addresses are mapped with the VMM's page
/// size) through `policy`. `duration_s` is the workload's ROI wall time.
///
/// `warmup_passes` replays of the trace run first with accounting reset
/// afterwards, so the measured pass reflects the steady state (the paper
/// sizes inputs "to minimize the effect of starting from cold memory").
RunResult run_trace(policy::HybridPolicy& policy, const trace::Trace& trace,
                    double duration_s, unsigned warmup_passes = 0);

/// Streaming variant: pulls records from a chunked stream reader
/// (constant memory — for captures too large to materialize). No warmup
/// support: streams are single-pass.
RunResult run_stream(policy::HybridPolicy& policy,
                     trace::StreamTraceReader& reader, double duration_s);

}  // namespace hymem::sim
