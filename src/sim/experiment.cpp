#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/migration_scheme.hpp"
#include "obs/epoch.hpp"
#include "obs/tap.hpp"
#include "sample/sampled_policy.hpp"
#include "sim/policy_factory.hpp"
#include "synth/generator.hpp"
#include "trace/interner.hpp"
#include "trace/trace_stats.hpp"
#include "util/check.hpp"

namespace hymem::sim {

MemorySizing size_memory(std::uint64_t footprint_pages,
                         const ExperimentConfig& config) {
  // Bad input (an empty workload), not a logic error: throw something the
  // sweep runner can catch into a structured per-job failure.
  if (footprint_pages == 0) {
    throw std::invalid_argument(
        "empty footprint: workload touches no pages, cannot size memory");
  }
  HYMEM_CHECK(config.memory_fraction > 0.0 && config.memory_fraction <= 1.0);
  HYMEM_CHECK(config.dram_fraction >= 0.0 && config.dram_fraction <= 1.0);
  MemorySizing s;
  s.total_frames = std::max<std::uint64_t>(
      2, static_cast<std::uint64_t>(std::llround(
             config.memory_fraction * static_cast<double>(footprint_pages))));
  if (is_single_tier(config.policy)) {
    const bool dram = config.policy.rfind("dram-only", 0) == 0;
    s.dram_frames = dram ? s.total_frames : 0;
    s.nvm_frames = dram ? 0 : s.total_frames;
    return s;
  }
  s.dram_frames = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::llround(
          config.dram_fraction * static_cast<double>(s.total_frames))),
      1, s.total_frames - 1);
  s.nvm_frames = s.total_frames - s.dram_frames;
  return s;
}

namespace {

os::VmmConfig vmm_config_for(const MemorySizing& sizing,
                             const ExperimentConfig& config) {
  os::VmmConfig vmm_config;
  vmm_config.dram_frames = sizing.dram_frames;
  vmm_config.nvm_frames = sizing.nvm_frames;
  vmm_config.page_size = config.page_size;
  vmm_config.access_granularity = config.access_granularity;
  vmm_config.dram = config.dram;
  vmm_config.nvm = config.nvm;
  vmm_config.disk = config.disk;
  vmm_config.transfer_mode = config.transfer_mode;
  vmm_config.wear_leveling = config.wear_leveling;
  return vmm_config;
}

std::uint64_t footprint_of(const trace::Trace& trace,
                           const ExperimentConfig& config) {
  trace::TraceCharacterizer characterizer(config.page_size);
  characterizer.observe(trace);
  return characterizer.stats().distinct_pages;
}

// Serializes an observer's per-access VMM reads against a live background
// migrator through the policy's quiesced() seam. Used around the epoch
// sampler in threaded sampled runs — its boundary snapshots read VMM
// ledgers the migrator mutates. on_run_end forwards unwrapped: the tee
// delivers it to the tap first, whose run-end hook joins the migrator
// before the sampler's final flush runs.
class QuiescedObserver final : public obs::RunObserver {
 public:
  QuiescedObserver(const sample::SampledLruPolicy& policy,
                   obs::RunObserver& inner)
      : policy_(policy), inner_(inner) {}

  void on_access(PageId page, AccessType type, Nanoseconds latency) override {
    policy_.quiesced([&] { inner_.on_access(page, type, latency); });
  }
  void on_run_end() override { inner_.on_run_end(); }

 private:
  const sample::SampledLruPolicy& policy_;
  obs::RunObserver& inner_;
};

// One engine invocation, routed by config: the historical run_trace
// reference loop when neither chunking nor exact sharding is requested,
// otherwise the block engine over a decode-once source (chunk_accesses per
// block, decode striped across `shards` workers in exact mode). The routes
// are byte-identical — test_stream_parity and the CI smokes gate it — so
// the choice is purely a throughput/memory knob.
RunResult engine_run(policy::HybridPolicy& policy, const trace::Trace& trace,
                     double duration_s, unsigned warmup_passes,
                     const ExperimentConfig& config,
                     obs::RunObserver* observer) {
  if (config.chunk_accesses == 0 && config.shards <= 1) {
    return run_trace(policy, trace, duration_s, warmup_passes, observer);
  }
  trace::TraceBlockSource source(
      trace, config.page_size,
      static_cast<std::size_t>(config.chunk_accesses),
      config.shard_mode == ShardMode::kExact ? config.shards : 1);
  return run_blocks(policy, source, duration_s, warmup_passes, observer);
}

// Measured pass with the observers the run needs on the engine's single
// seam: the sampling tap (always, for sampled policies — without it the
// policy never migrates), plus an EpochSampler when the config asks for a
// timeline, chained through a TeeObserver (tap first, so epoch-boundary
// snapshots see the boundary access's sample).
RunResult measured_run(policy::HybridPolicy& policy, const trace::Trace& trace,
                       double duration_s, unsigned warmup_passes,
                       const ExperimentConfig& config) {
  auto* sampled = dynamic_cast<sample::SampledLruPolicy*>(&policy);
  obs::RunObserver* tap = sampled != nullptr ? &sampled->tap() : nullptr;

  const auto finish = [sampled](RunResult result) {
    if (sampled != nullptr) {
      // Threaded runs: quiesce the migrator so the stats are final and the
      // structures are safe to read without locking.
      sampled->stop_background();
      result.sampled = sampled->sampled_stats();
      result.has_sampled = true;
    }
    return result;
  };

  if (config.timeline_epoch == 0) {
    return finish(
        engine_run(policy, trace, duration_s, warmup_passes, config, tap));
  }
  // The sampler reads scheme internals (windows, thresholds) only when the
  // policy actually is the two-LRU scheme; single-tier baselines still get
  // the VMM-level columns.
  const auto* scheme =
      dynamic_cast<const core::TwoLruMigrationPolicy*>(&policy);
  obs::EpochSampler sampler(config.timeline_epoch, policy.vmm(), scheme,
                            duration_s, sampled);
  std::optional<QuiescedObserver> locked_sampler;
  obs::RunObserver* epoch_observer = &sampler;
  if (sampled != nullptr && sampled->config().threaded) {
    locked_sampler.emplace(*sampled, sampler);
    epoch_observer = &*locked_sampler;
  }
  std::optional<obs::TeeObserver> tee;
  obs::RunObserver* observer = epoch_observer;
  if (tap != nullptr) {
    tee.emplace(*tap, *epoch_observer);
    observer = &*tee;
  }
  RunResult result =
      engine_run(policy, trace, duration_s, warmup_passes, config, observer);
  result.timeline = sampler.take_timeline();
  return finish(result);
}

}  // namespace

RunResult run_experiment(const trace::Trace& trace, double duration_s,
                         const ExperimentConfig& config) {
  const MemorySizing sizing = size_memory(footprint_of(trace, config), config);
  os::Vmm vmm(vmm_config_for(sizing, config));
  const auto policy =
      make_policy(config.policy, vmm, config.migration, config.sample);
  // Note: run_trace's internal warmup passes bypass the observer seam, so
  // on this single-trace path a sampled policy warms up placement (demand
  // faults) but not hotness. The two-trace variant below warms both.
  return measured_run(*policy, trace, duration_s, config.warmup_passes, config);
}

RunResult run_experiment(const trace::Trace& warmup,
                         const trace::Trace& measured, double duration_s,
                         const ExperimentConfig& config) {
  const MemorySizing sizing = size_memory(footprint_of(warmup, config), config);
  os::Vmm vmm(vmm_config_for(sizing, config));
  const auto policy =
      make_policy(config.policy, vmm, config.migration, config.sample);
  // Sampled policies learn hotness through their tap, which normally rides
  // the engine's observer seam; this hand-rolled warmup loop feeds it
  // directly so the measured pass starts from a warmed hotness board, not
  // just warmed placement.
  auto* sampled_policy = dynamic_cast<sample::SampledLruPolicy*>(policy.get());
  obs::RunObserver* warm_tap =
      sampled_policy != nullptr ? &sampled_policy->tap() : nullptr;
  // Decode the warmup trace once and replay the cached page sequence for
  // every pass (the measured trace is decoded inside run_trace).
  const trace::PageIdInterner interner(warmup, config.page_size);
  const std::span<const PageId> pages = interner.pages();
  const std::span<const trace::MemAccess> accesses = warmup.accesses();
  constexpr std::size_t kPrefetchDistance = 8;
  for (unsigned pass = 0; pass < std::max(1u, config.warmup_passes); ++pass) {
    for (std::size_t i = 0; i < pages.size(); ++i) {
      if (i + kPrefetchDistance < pages.size()) {
        policy->prefetch(pages[i + kPrefetchDistance]);
      }
      const Nanoseconds latency = policy->on_access(pages[i], accesses[i].type);
      if (warm_tap != nullptr) {
        warm_tap->on_access(pages[i], accesses[i].type, latency);
      }
    }
  }
  // The warmup loop above fed the tap, so a threaded migrator may be
  // mid-migration right now: reset the ledgers under its serving mutex.
  if (sampled_policy != nullptr) {
    sampled_policy->quiesced([&vmm] { vmm.reset_accounting(); });
    sampled_policy->reset_stats();
  } else {
    vmm.reset_accounting();
  }
  return measured_run(*policy, measured, duration_s, /*warmup_passes=*/0,
                      config);
}

bool analytic_supported(const ExperimentConfig& config) {
  if (config.policy == "two-lru") return !config.migration.adaptive;
  // Single-tier baselines: only the (default) LRU replacement matches the
  // stack-distance model.
  return config.policy == "dram-only" || config.policy == "dram-only:lru" ||
         config.policy == "nvm-only" || config.policy == "nvm-only:lru";
}

model::AnalyticConfig analytic_config_for(const ExperimentConfig& config,
                                          const MemorySizing& sizing,
                                          double duration_s) {
  model::AnalyticConfig a;
  a.dram_frames = sizing.dram_frames;
  a.nvm_frames = sizing.nvm_frames;
  a.migration = config.migration;
  a.params.dram = config.dram;
  a.params.nvm = config.nvm;
  a.params.disk_latency_ns = config.disk.access_latency_ns;
  a.params.page_factor = config.page_size / config.access_granularity;
  a.params.dram_bytes = sizing.dram_frames * config.page_size;
  a.params.nvm_bytes = sizing.nvm_frames * config.page_size;
  a.params.transfer_mode = config.transfer_mode;
  a.duration_s = duration_s;
  return a;
}

AnalyticWorkload characterize_workload(const synth::WorkloadProfile& profile,
                                       std::uint64_t scale,
                                       const ExperimentConfig& config,
                                       std::uint64_t seed) {
  const synth::WorkloadProfile scaled = profile.scaled(scale);
  synth::GeneratorOptions options;
  options.page_size = config.page_size;
  options.line_size = config.access_granularity;
  options.seed = seed;
  const trace::Trace warmup = synth::generate(scaled, options);
  synth::GeneratorOptions body_options = options;
  body_options.ensure_full_footprint = false;
  body_options.seed = seed + 1;
  const trace::Trace measured = synth::generate(scaled, body_options);

  trace::ReuseDistanceAnalyzer analyzer(config.page_size);
  // One warmup observation suffices for any warmup_passes: repeated passes
  // leave the same final LRU stack order.
  analyzer.observe(warmup);
  AnalyticWorkload w;
  w.footprint_pages = analyzer.distinct_pages();
  analyzer.reset_stats();
  analyzer.observe(measured);
  w.profile = analyzer.profile();
  w.duration_s = scaled.roi_seconds;
  return w;
}

model::AnalyticEstimate analytic_estimate(const AnalyticWorkload& workload,
                                          const ExperimentConfig& config) {
  if (!analytic_supported(config)) {
    throw std::invalid_argument("analytic estimator does not model policy: " +
                                config.policy);
  }
  const MemorySizing sizing = size_memory(workload.footprint_pages, config);
  return model::estimate(
      workload.profile,
      analytic_config_for(config, sizing, workload.duration_s));
}

RunResult run_workload(const synth::WorkloadProfile& profile,
                       std::uint64_t scale, const ExperimentConfig& config,
                       std::uint64_t seed) {
  const synth::WorkloadProfile scaled = profile.scaled(scale);
  synth::GeneratorOptions options;
  options.page_size = config.page_size;
  options.line_size = config.access_granularity;
  options.seed = seed;
  // The warmup trace covers the full Table III footprint (cold start);
  // the measured trace draws from the same distribution without the forced
  // one-time cold touches, so the counted window is steady-state.
  const trace::Trace warmup = synth::generate(scaled, options);
  synth::GeneratorOptions body_options = options;
  body_options.ensure_full_footprint = false;
  body_options.seed = seed + 1;
  const trace::Trace measured = synth::generate(scaled, body_options);
  return run_experiment(warmup, measured, scaled.roi_seconds, config);
}

}  // namespace hymem::sim
