#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/migration_scheme.hpp"
#include "obs/epoch.hpp"
#include "sim/policy_factory.hpp"
#include "synth/generator.hpp"
#include "trace/interner.hpp"
#include "trace/trace_stats.hpp"
#include "util/check.hpp"

namespace hymem::sim {

MemorySizing size_memory(std::uint64_t footprint_pages,
                         const ExperimentConfig& config) {
  // Bad input (an empty workload), not a logic error: throw something the
  // sweep runner can catch into a structured per-job failure.
  if (footprint_pages == 0) {
    throw std::invalid_argument(
        "empty footprint: workload touches no pages, cannot size memory");
  }
  HYMEM_CHECK(config.memory_fraction > 0.0 && config.memory_fraction <= 1.0);
  HYMEM_CHECK(config.dram_fraction >= 0.0 && config.dram_fraction <= 1.0);
  MemorySizing s;
  s.total_frames = std::max<std::uint64_t>(
      2, static_cast<std::uint64_t>(std::llround(
             config.memory_fraction * static_cast<double>(footprint_pages))));
  if (is_single_tier(config.policy)) {
    const bool dram = config.policy.rfind("dram-only", 0) == 0;
    s.dram_frames = dram ? s.total_frames : 0;
    s.nvm_frames = dram ? 0 : s.total_frames;
    return s;
  }
  s.dram_frames = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::llround(
          config.dram_fraction * static_cast<double>(s.total_frames))),
      1, s.total_frames - 1);
  s.nvm_frames = s.total_frames - s.dram_frames;
  return s;
}

namespace {

os::VmmConfig vmm_config_for(const MemorySizing& sizing,
                             const ExperimentConfig& config) {
  os::VmmConfig vmm_config;
  vmm_config.dram_frames = sizing.dram_frames;
  vmm_config.nvm_frames = sizing.nvm_frames;
  vmm_config.page_size = config.page_size;
  vmm_config.access_granularity = config.access_granularity;
  vmm_config.dram = config.dram;
  vmm_config.nvm = config.nvm;
  vmm_config.disk = config.disk;
  vmm_config.transfer_mode = config.transfer_mode;
  vmm_config.wear_leveling = config.wear_leveling;
  return vmm_config;
}

std::uint64_t footprint_of(const trace::Trace& trace,
                           const ExperimentConfig& config) {
  trace::TraceCharacterizer characterizer(config.page_size);
  characterizer.observe(trace);
  return characterizer.stats().distinct_pages;
}

// Measured pass with an EpochSampler attached when the config asks for a
// timeline; otherwise the plain uninstrumented replay.
RunResult measured_run(policy::HybridPolicy& policy, const trace::Trace& trace,
                       double duration_s, unsigned warmup_passes,
                       const ExperimentConfig& config) {
  if (config.timeline_epoch == 0) {
    return run_trace(policy, trace, duration_s, warmup_passes);
  }
  // The sampler reads scheme internals (windows, thresholds) only when the
  // policy actually is the two-LRU scheme; single-tier baselines still get
  // the VMM-level columns.
  const auto* scheme =
      dynamic_cast<const core::TwoLruMigrationPolicy*>(&policy);
  obs::EpochSampler sampler(config.timeline_epoch, policy.vmm(), scheme,
                            duration_s);
  RunResult result =
      run_trace(policy, trace, duration_s, warmup_passes, &sampler);
  result.timeline = sampler.take_timeline();
  return result;
}

}  // namespace

RunResult run_experiment(const trace::Trace& trace, double duration_s,
                         const ExperimentConfig& config) {
  const MemorySizing sizing = size_memory(footprint_of(trace, config), config);
  os::Vmm vmm(vmm_config_for(sizing, config));
  const auto policy = make_policy(config.policy, vmm, config.migration);
  return measured_run(*policy, trace, duration_s, config.warmup_passes, config);
}

RunResult run_experiment(const trace::Trace& warmup,
                         const trace::Trace& measured, double duration_s,
                         const ExperimentConfig& config) {
  const MemorySizing sizing = size_memory(footprint_of(warmup, config), config);
  os::Vmm vmm(vmm_config_for(sizing, config));
  const auto policy = make_policy(config.policy, vmm, config.migration);
  // Decode the warmup trace once and replay the cached page sequence for
  // every pass (the measured trace is decoded inside run_trace).
  const trace::PageIdInterner interner(warmup, config.page_size);
  const std::span<const PageId> pages = interner.pages();
  const std::span<const trace::MemAccess> accesses = warmup.accesses();
  constexpr std::size_t kPrefetchDistance = 8;
  for (unsigned pass = 0; pass < std::max(1u, config.warmup_passes); ++pass) {
    for (std::size_t i = 0; i < pages.size(); ++i) {
      if (i + kPrefetchDistance < pages.size()) {
        policy->prefetch(pages[i + kPrefetchDistance]);
      }
      policy->on_access(pages[i], accesses[i].type);
    }
  }
  vmm.reset_accounting();
  return measured_run(*policy, measured, duration_s, /*warmup_passes=*/0,
                      config);
}

RunResult run_workload(const synth::WorkloadProfile& profile,
                       std::uint64_t scale, const ExperimentConfig& config,
                       std::uint64_t seed) {
  const synth::WorkloadProfile scaled = profile.scaled(scale);
  synth::GeneratorOptions options;
  options.page_size = config.page_size;
  options.line_size = config.access_granularity;
  options.seed = seed;
  // The warmup trace covers the full Table III footprint (cold start);
  // the measured trace draws from the same distribution without the forced
  // one-time cold touches, so the counted window is steady-state.
  const trace::Trace warmup = synth::generate(scaled, options);
  synth::GeneratorOptions body_options = options;
  body_options.ensure_full_footprint = false;
  body_options.seed = seed + 1;
  const trace::Trace measured = synth::generate(scaled, body_options);
  return run_experiment(warmup, measured, scaled.roi_seconds, config);
}

}  // namespace hymem::sim
