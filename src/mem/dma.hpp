// DMA page-transfer cost model.
//
// The paper assumes separate DRAM and NVM modules connected by DMA
// (Section II): migrating a page reads it from the source module and writes
// it to the destination, each costing PageFactor device accesses, where
// PageFactor converts one page move into memory-granularity accesses
// (page_size / access_granularity; 64 for 4KB pages and 64B lines).
#pragma once

#include <cstdint>

#include "mem/device.hpp"
#include "util/units.hpp"

namespace hymem::mem {

/// Converts a page move into device accesses.
constexpr std::uint64_t page_factor(std::uint64_t page_size,
                                    std::uint64_t access_granularity) {
  return page_size / access_granularity;
}

/// Counters per transfer kind.
struct DmaCounters {
  std::uint64_t migrations_nvm_to_dram = 0;
  std::uint64_t migrations_dram_to_nvm = 0;
  std::uint64_t disk_fills_to_dram = 0;
  std::uint64_t disk_fills_to_nvm = 0;

  std::uint64_t migrations() const {
    return migrations_nvm_to_dram + migrations_dram_to_nvm;
  }
};

/// How the two modules exchange pages.
///
/// The paper assumes separate modules over DMA ("for the sake of
/// generality") but notes that "if both memory types can be assembled in
/// one module, the migrations can be done more effectively". kIntegrated
/// models that design point: reads from the source stream into writes at
/// the destination, so the transfer takes max(read, write) time instead of
/// their sum. Energy and endurance are identical — every bit is still read
/// once and written once.
enum class TransferMode : std::uint8_t { kDma = 0, kIntegrated = 1 };

/// Models page movement between the two modules and from disk.
class DmaEngine {
 public:
  /// `access_granularity` is the device access width (LLC line size).
  DmaEngine(std::uint64_t page_size, std::uint64_t access_granularity,
            TransferMode mode = TransferMode::kDma);

  std::uint64_t accesses_per_page() const { return page_factor_; }
  TransferMode mode() const { return mode_; }
  const DmaCounters& counters() const { return counters_; }

  /// Zeroes the transfer counters (start of a measurement window).
  void reset_counters() { counters_ = DmaCounters{}; }

  /// Migrates one page `from` -> `to`; charges PageFactor reads on the
  /// source and PageFactor writes on the destination. Returns the latency.
  Nanoseconds migrate(MemoryDevice& from, MemoryDevice& to);

  /// Fills one page from disk into `to`; charges PageFactor writes on the
  /// destination. (The disk latency itself is modeled by the OS layer: the
  /// paper overlaps the memory writes with the disk transfer, so only the
  /// disk delay is visible in AMAT, but the *energy* of the page write is
  /// charged — Eq. 2 terms 3-4.)
  Nanoseconds fill_from_disk(MemoryDevice& to);

 private:
  std::uint64_t page_factor_;
  TransferMode mode_;
  DmaCounters counters_;
};

}  // namespace hymem::mem
