// Bank/row-buffer refinement of the flat Table IV latencies.
//
// The paper (like CLOCK-DWF) models each memory as a single latency pair.
// Real DDR/PCM devices are banked with row buffers: an access to the open
// row is much faster than one that needs precharge+activate. This model
// quantifies how far the flat-latency assumption is from a banked device
// for our traces — used by the bench_ablation_rowbuffer harness — without
// perturbing the calibrated Eq. 1/2 models.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/technology.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace hymem::mem {

/// Geometry and timing of a banked module.
struct BankModelConfig {
  std::uint32_t banks = 8;
  std::uint64_t row_bytes = 8 * kKiB;  ///< Row-buffer size.
  /// Latency of an access hitting the open row.
  Nanoseconds row_hit_ns = 15;
  /// Additional latency to close the old row and activate the new one.
  Nanoseconds row_miss_penalty_ns = 35;
  /// Extra write-recovery time on writes (NVM-style asymmetric writes).
  Nanoseconds write_recovery_ns = 0;
};

/// Per-run counters of the bank model.
struct BankStats {
  std::uint64_t accesses = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  Nanoseconds total_latency_ns = 0;

  double row_hit_ratio() const {
    return accesses ? static_cast<double>(row_hits) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  Nanoseconds average_latency_ns() const {
    return accesses ? total_latency_ns / static_cast<double>(accesses) : 0.0;
  }
};

/// Open-page banked memory: tracks one open row per bank.
class BankModel {
 public:
  explicit BankModel(const BankModelConfig& config);

  const BankModelConfig& config() const { return config_; }
  const BankStats& stats() const { return stats_; }

  /// Simulates one access; returns its latency.
  Nanoseconds access(Addr addr, AccessType type);

  /// Derives a banked config approximating a Table IV technology: the
  /// weighted row-hit/row-miss mix reproduces the flat latency at the given
  /// expected hit ratio.
  static BankModelConfig from_technology(const MemTechnology& tech,
                                         double expected_row_hit_ratio);

 private:
  std::uint32_t bank_of(Addr addr) const;
  std::uint64_t row_of(Addr addr) const;

  BankModelConfig config_;
  std::vector<std::uint64_t> open_row_;  // per bank; kNoRow when closed
  BankStats stats_;

  static constexpr std::uint64_t kNoRow = ~0ULL;
};

}  // namespace hymem::mem
