#include "mem/dma.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hymem::mem {

namespace {

std::uint64_t checked_page_factor(std::uint64_t page_size,
                                  std::uint64_t access_granularity) {
  HYMEM_CHECK_MSG(access_granularity > 0 && page_size % access_granularity == 0,
                  "page size must be a multiple of the access granularity");
  const std::uint64_t factor = page_factor(page_size, access_granularity);
  HYMEM_CHECK(factor > 0);
  return factor;
}

}  // namespace

DmaEngine::DmaEngine(std::uint64_t page_size, std::uint64_t access_granularity,
                     TransferMode mode)
    : page_factor_(checked_page_factor(page_size, access_granularity)),
      mode_(mode) {}

Nanoseconds DmaEngine::migrate(MemoryDevice& from, MemoryDevice& to) {
  HYMEM_CHECK_MSG(from.tier() != to.tier(), "migration must cross modules");
  if (from.tier() == Tier::kNvm) {
    ++counters_.migrations_nvm_to_dram;
  } else {
    ++counters_.migrations_dram_to_nvm;
  }
  const Nanoseconds read_lat =
      from.record_transfer(AccessType::kRead, page_factor_);
  const Nanoseconds write_lat =
      to.record_transfer(AccessType::kWrite, page_factor_);
  // Integrated module: source reads stream into destination writes.
  return mode_ == TransferMode::kDma ? read_lat + write_lat
                                     : std::max(read_lat, write_lat);
}

Nanoseconds DmaEngine::fill_from_disk(MemoryDevice& to) {
  if (to.tier() == Tier::kDram) {
    ++counters_.disk_fills_to_dram;
  } else {
    ++counters_.disk_fills_to_nvm;
  }
  return to.record_transfer(AccessType::kWrite, page_factor_);
}

}  // namespace hymem::mem
