// One memory module (DRAM or NVM) of the hybrid main memory: capacity,
// access accounting, and energy bookkeeping. Frame allocation lives in
// hymem::os; the device only validates counts and accumulates costs.
#pragma once

#include <cstdint>

#include "mem/technology.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace hymem::mem {

/// Dynamic access counters for one device.
struct DeviceCounters {
  std::uint64_t demand_reads = 0;    ///< CPU-request reads served.
  std::uint64_t demand_writes = 0;   ///< CPU-request writes served.
  std::uint64_t transfer_reads = 0;  ///< Accesses due to page moves (source side).
  std::uint64_t transfer_writes = 0; ///< Accesses due to page moves (destination side).

  std::uint64_t total_reads() const { return demand_reads + transfer_reads; }
  std::uint64_t total_writes() const { return demand_writes + transfer_writes; }
  std::uint64_t total() const { return total_reads() + total_writes(); }
};

/// A memory module.
class MemoryDevice {
 public:
  MemoryDevice(Tier tier, MemTechnology technology, std::uint64_t frames,
               std::uint64_t page_size);

  Tier tier() const { return tier_; }
  const MemTechnology& technology() const { return tech_; }
  std::uint64_t frames() const { return frames_; }
  std::uint64_t page_size() const { return page_size_; }
  std::uint64_t capacity_bytes() const { return frames_ * page_size_; }

  const DeviceCounters& counters() const { return counters_; }

  /// Records a CPU demand access; returns its latency. Header-inline: this
  /// is one of the few calls on the per-access replay path, and the body is
  /// a counter increment plus a latency-table read.
  Nanoseconds record_demand(AccessType type) {
    const bool write = type == AccessType::kWrite;
    if (write) {
      ++counters_.demand_writes;
    } else {
      ++counters_.demand_reads;
    }
    return tech_.latency(write);
  }

  /// The latency one demand access of `type` costs (what record_demand
  /// returns), without recording anything.
  Nanoseconds demand_latency(AccessType type) const {
    return tech_.latency(type == AccessType::kWrite);
  }

  /// Folds `reads` + `writes` demand accesses into the counters at once
  /// (block-replay batching; equivalent to that many record_demand calls).
  void record_demand_batch(std::uint64_t reads, std::uint64_t writes) {
    counters_.demand_reads += reads;
    counters_.demand_writes += writes;
  }

  /// Records `n` device accesses on behalf of a page transfer (DMA read from
  /// this device, or DMA write into it); returns the total latency.
  Nanoseconds record_transfer(AccessType type, std::uint64_t n);

  /// Dynamic energy consumed so far (nJ).
  Nanojoules dynamic_energy_nj() const;

  /// Zeroes the access counters (start of a measurement window).
  void reset_counters() { counters_ = DeviceCounters{}; }

  /// Static power of the module (W); energy over an interval is
  /// static_power() * seconds.
  Watts static_power() const { return tech_.static_power(capacity_bytes()); }

 private:
  Tier tier_;
  MemTechnology tech_;
  std::uint64_t frames_;
  std::uint64_t page_size_;
  DeviceCounters counters_;
};

}  // namespace hymem::mem
