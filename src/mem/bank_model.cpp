#include "mem/bank_model.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hymem::mem {

BankModel::BankModel(const BankModelConfig& config)
    : config_(config), open_row_(config.banks, kNoRow) {
  HYMEM_CHECK_MSG(config.banks > 0, "need at least one bank");
  HYMEM_CHECK_MSG(config.row_bytes > 0, "row size must be positive");
}

std::uint32_t BankModel::bank_of(Addr addr) const {
  // Row-interleaved bank mapping: consecutive rows land in different banks.
  return static_cast<std::uint32_t>((addr / config_.row_bytes) % config_.banks);
}

std::uint64_t BankModel::row_of(Addr addr) const {
  return addr / config_.row_bytes / config_.banks;
}

Nanoseconds BankModel::access(Addr addr, AccessType type) {
  const std::uint32_t bank = bank_of(addr);
  const std::uint64_t row = row_of(addr);
  ++stats_.accesses;
  Nanoseconds latency = config_.row_hit_ns;
  if (open_row_[bank] == row) {
    ++stats_.row_hits;
  } else {
    ++stats_.row_misses;
    latency += config_.row_miss_penalty_ns;
    open_row_[bank] = row;
  }
  if (type == AccessType::kWrite) latency += config_.write_recovery_ns;
  stats_.total_latency_ns += latency;
  return latency;
}

BankModelConfig BankModel::from_technology(const MemTechnology& tech,
                                           double expected_row_hit_ratio) {
  HYMEM_CHECK(expected_row_hit_ratio >= 0.0 && expected_row_hit_ratio < 1.0);
  BankModelConfig config;
  // Split the flat read latency into hit/miss components so that
  //   hit*p + (hit+penalty)*(1-p) == flat_read.
  config.row_hit_ns = tech.read_latency_ns * 0.4;
  config.row_miss_penalty_ns =
      (tech.read_latency_ns - config.row_hit_ns) /
      std::max(0.05, 1.0 - expected_row_hit_ratio);
  config.write_recovery_ns = tech.write_latency_ns - tech.read_latency_ns;
  return config;
}

}  // namespace hymem::mem
