// NVM endurance tracking.
//
// The paper's endurance analysis (Sections III.C, V.B / Figs. 2c and 4b)
// counts *physical writes into NVM* broken down by source: demand write
// hits, page-fault fills, and DRAM->NVM migrations. This tracker also keeps
// per-frame wear so wear imbalance is visible, and offers an optional
// Start-Gap remapper (Qureshi et al.) as a wear-leveling extension.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace hymem::mem {

/// Sources of physical writes into NVM (per Figs. 2c / 4b).
enum class NvmWriteSource : std::uint8_t {
  kDemandWrite = 0,  ///< CPU write request served by NVM.
  kPageFault,        ///< Page filled from disk into NVM.
  kMigration,        ///< Page migrated DRAM -> NVM.
};

/// Per-frame wear counters plus the per-source write breakdown.
class EnduranceTracker {
 public:
  EnduranceTracker(std::uint64_t frames, double endurance_cycles);

  /// Records `count` cell writes into `frame` attributed to `source`.
  void record(FrameId frame, NvmWriteSource source, std::uint64_t count = 1);

  std::uint64_t total_writes() const { return total_; }
  std::uint64_t writes_from(NvmWriteSource source) const {
    return by_source_[static_cast<std::size_t>(source)];
  }

  std::uint64_t frame_wear(FrameId frame) const;
  std::uint64_t max_wear() const;
  double mean_wear() const;
  /// max/mean wear (1.0 = perfectly even; large = hot-spotted).
  double wear_imbalance() const;

  /// Fraction of per-cell endurance consumed by the most worn frame
  /// (0 when endurance is unlimited).
  double lifetime_consumed() const;

  /// Zeroes all wear counters (start of a measurement window).
  void reset();

 private:
  double endurance_cycles_;
  std::vector<std::uint64_t> wear_;
  std::uint64_t total_ = 0;
  std::uint64_t by_source_[3] = {0, 0, 0};
};

/// Start-Gap wear leveling (Qureshi et al., MICRO'09): one spare frame and a
/// gap that rotates through the address space every `gap_interval` writes,
/// spreading writes across physical frames with O(1) remapping state.
class StartGapRemapper {
 public:
  /// `frames` logical frames are mapped onto frames+1 physical slots.
  StartGapRemapper(std::uint64_t frames, std::uint64_t gap_interval);

  /// Physical slot currently backing `logical`.
  FrameId physical(FrameId logical) const;

  /// Notifies one page write; occasionally rotates the gap.
  void on_write();

  std::uint64_t rotations() const { return rotations_; }

 private:
  std::uint64_t frames_;
  std::uint64_t gap_interval_;
  std::uint64_t start_ = 0;  // rotation offset
  std::uint64_t gap_;        // index of the empty physical slot
  std::uint64_t writes_since_move_ = 0;
  std::uint64_t rotations_ = 0;
};

}  // namespace hymem::mem
