#include "mem/endurance.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hymem::mem {

EnduranceTracker::EnduranceTracker(std::uint64_t frames, double endurance_cycles)
    : endurance_cycles_(endurance_cycles), wear_(frames, 0) {
  HYMEM_CHECK_MSG(frames > 0, "endurance tracker needs at least one frame");
}

void EnduranceTracker::record(FrameId frame, NvmWriteSource source,
                              std::uint64_t count) {
  HYMEM_CHECK_MSG(frame < wear_.size(), "frame out of range");
  wear_[frame] += count;
  total_ += count;
  by_source_[static_cast<std::size_t>(source)] += count;
}

std::uint64_t EnduranceTracker::frame_wear(FrameId frame) const {
  HYMEM_CHECK(frame < wear_.size());
  return wear_[frame];
}

std::uint64_t EnduranceTracker::max_wear() const {
  return *std::max_element(wear_.begin(), wear_.end());
}

double EnduranceTracker::mean_wear() const {
  return static_cast<double>(total_) / static_cast<double>(wear_.size());
}

double EnduranceTracker::wear_imbalance() const {
  const double mean = mean_wear();
  return mean > 0.0 ? static_cast<double>(max_wear()) / mean : 1.0;
}

void EnduranceTracker::reset() {
  std::fill(wear_.begin(), wear_.end(), 0);
  total_ = 0;
  by_source_[0] = by_source_[1] = by_source_[2] = 0;
}

double EnduranceTracker::lifetime_consumed() const {
  if (endurance_cycles_ <= 0.0) return 0.0;
  return static_cast<double>(max_wear()) / endurance_cycles_;
}

StartGapRemapper::StartGapRemapper(std::uint64_t frames,
                                   std::uint64_t gap_interval)
    : frames_(frames), gap_interval_(gap_interval), gap_(frames) {
  HYMEM_CHECK(frames > 0);
  HYMEM_CHECK_MSG(gap_interval > 0, "gap interval must be positive");
}

FrameId StartGapRemapper::physical(FrameId logical) const {
  HYMEM_CHECK_MSG(logical < frames_, "logical frame out of range");
  FrameId p = (logical + start_) % frames_;
  if (p >= gap_) ++p;  // skip the gap slot
  return p;
}

void StartGapRemapper::on_write() {
  if (++writes_since_move_ < gap_interval_) return;
  writes_since_move_ = 0;
  ++rotations_;
  if (gap_ == 0) {
    gap_ = frames_;
    start_ = (start_ + 1) % frames_;
  } else {
    --gap_;
  }
}

}  // namespace hymem::mem
