#include "mem/device.hpp"

#include "util/check.hpp"

namespace hymem::mem {

MemoryDevice::MemoryDevice(Tier tier, MemTechnology technology,
                           std::uint64_t frames, std::uint64_t page_size)
    : tier_(tier),
      tech_(std::move(technology)),
      frames_(frames),
      page_size_(page_size) {
  HYMEM_CHECK_MSG(page_size > 0, "page size must be positive");
}

Nanoseconds MemoryDevice::record_transfer(AccessType type, std::uint64_t n) {
  const bool write = type == AccessType::kWrite;
  if (write) {
    counters_.transfer_writes += n;
  } else {
    counters_.transfer_reads += n;
  }
  return tech_.latency(write) * static_cast<double>(n);
}

Nanojoules MemoryDevice::dynamic_energy_nj() const {
  return static_cast<double>(counters_.total_reads()) * tech_.read_energy_nj +
         static_cast<double>(counters_.total_writes()) * tech_.write_energy_nj;
}

}  // namespace hymem::mem
