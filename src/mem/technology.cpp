#include "mem/technology.hpp"

namespace hymem::mem {

const MemTechnology& dram_table4() {
  static const MemTechnology t{
      .name = "DRAM",
      .read_latency_ns = 50,
      .write_latency_ns = 50,
      .read_energy_nj = 3.2,
      .write_energy_nj = 3.2,
      .static_power_j_per_gb_s = 1.0,
      .endurance_cycles = 0,  // unlimited for practical purposes
  };
  return t;
}

const MemTechnology& pcm_table4() {
  static const MemTechnology t{
      .name = "NVM(PCM)",
      .read_latency_ns = 100,
      .write_latency_ns = 350,
      .read_energy_nj = 6.4,
      .write_energy_nj = 32.0,
      .static_power_j_per_gb_s = 0.1,
      .endurance_cycles = 1e8,
  };
  return t;
}

const MemTechnology& stt_ram() {
  static const MemTechnology t{
      .name = "STT-RAM",
      .read_latency_ns = 60,
      .write_latency_ns = 150,
      .read_energy_nj = 4.0,
      .write_energy_nj = 10.0,
      .static_power_j_per_gb_s = 0.15,
      .endurance_cycles = 1e12,
  };
  return t;
}

const MemTechnology& rram() {
  static const MemTechnology t{
      .name = "RRAM",
      .read_latency_ns = 80,
      .write_latency_ns = 250,
      .read_energy_nj = 5.0,
      .write_energy_nj = 20.0,
      .static_power_j_per_gb_s = 0.12,
      .endurance_cycles = 1e10,
  };
  return t;
}

}  // namespace hymem::mem
