// Memory technology parameter sets.
//
// Table IV of the paper (taken from the CLOCK-DWF study so comparisons are
// fair) is the default: DRAM 50/50 ns and 3.2/3.2 nJ with 1 J/(GB*s) static
// power; PCM 100/350 ns and 6.4/32 nJ with 0.1 J/(GB*s). Additional NVM
// presets (STT-RAM, RRAM) are provided for sensitivity studies.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace hymem::mem {

/// Timing/energy/endurance description of one memory technology.
struct MemTechnology {
  std::string name;
  Nanoseconds read_latency_ns = 0;
  Nanoseconds write_latency_ns = 0;
  Nanojoules read_energy_nj = 0;
  Nanojoules write_energy_nj = 0;
  /// Static (leakage + refresh) power density in J per GB per second.
  double static_power_j_per_gb_s = 0;
  /// Write endurance in cycles per cell (0 = effectively unlimited).
  double endurance_cycles = 0;

  /// Static power in watts for a module of `bytes` capacity.
  Watts static_power(std::uint64_t bytes) const {
    return static_power_j_per_gb_s * (static_cast<double>(bytes) /
                                      static_cast<double>(kGiB));
  }

  Nanoseconds latency(bool write) const {
    return write ? write_latency_ns : read_latency_ns;
  }
  Nanojoules energy(bool write) const {
    return write ? write_energy_nj : read_energy_nj;
  }
};

/// Table IV DRAM row.
const MemTechnology& dram_table4();
/// Table IV NVM (PCM) row. Endurance set to 1e8 cycles (typical PCM).
const MemTechnology& pcm_table4();
/// STT-RAM preset (Kultursay et al., ISPASS'14 ballpark) for extensions.
const MemTechnology& stt_ram();
/// RRAM preset for extensions.
const MemTechnology& rram();

/// Secondary-storage model: Table II uses an HDD with 5 ms response time.
struct DiskModel {
  Nanoseconds access_latency_ns = ms_to_ns(5.0);
};

}  // namespace hymem::mem
